package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"disttrack/internal/durable"
)

// openDurable opens a durable server on dir. The checkpoint interval is an
// hour so tests control checkpoint timing explicitly.
func openDurable(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := Open(Config{
		DataDir:            dir,
		CheckpointInterval: time.Hour,
		Fsync:              durable.FsyncNever, // in-process "crashes" never lose the page cache
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ingestN feeds values [0,n) one batch per value to site 0 of the tenant —
// one WAL record per value, which lets torn-tail tests reason about exactly
// which values a truncation loses.
func ingestN(t *testing.T, s *Server, tenant string, n int) {
	t.Helper()
	for v := 0; v < n; v++ {
		if acc, errs := s.Ingest([]Record{{Tenant: tenant, Site: 0, Value: uint64(v)}}); acc != 1 {
			t.Fatalf("ingest value %d: accepted %d, errs %+v", v, acc, errs)
		}
	}
	s.Flush()
}

// abandon simulates a crash: the server is dropped without Close, so no
// final checkpoint runs and the WAL is the only record of the tail. The
// leaked goroutines idle until the test process exits.
func abandon(s *Server) {
	s.dur.stopLoop()
}

// checkpointAll forces a checkpoint of every tenant now.
func checkpointAll(t *testing.T, s *Server) {
	t.Helper()
	for _, tn := range s.reg.all() {
		if err := s.checkpointTenant(tn); err != nil {
			t.Fatalf("checkpoint %s: %v", tn.cfg.Name, err)
		}
	}
}

// TestDurableCrashRecovery is the core crash test, across all three tenant
// kinds: ingest, checkpoint mid-stream, ingest more (so recovery needs both
// the checkpoint and the WAL tail), crash without Close, reopen, and verify
// the recovered trackers give exactly the answers a never-crashed server
// would. k=1 keeps delivery single-threaded, so recovered state is
// byte-for-byte deterministic, not just total-preserving.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	for _, tc := range []TenantConfig{
		{Name: "hh", Kind: KindHH, K: 1, Eps: 0.1},
		{Name: "quant", Kind: KindQuantile, K: 1, Eps: 0.1, Phis: []float64{0.5}},
		{Name: "allq", Kind: KindAllQ, K: 1, Eps: 0.1},
	} {
		mustCreate(t, s, tc)
	}

	const half, total = 40, 80
	for _, name := range []string{"hh", "quant", "allq"} {
		ingestN(t, s, name, half)
	}
	checkpointAll(t, s)
	for _, name := range []string{"hh", "quant", "allq"} {
		for v := half; v < total; v++ {
			if acc, _ := s.Ingest([]Record{{Tenant: name, Site: 0, Value: uint64(v)}}); acc != 1 {
				t.Fatalf("ingest %s value %d not accepted", name, v)
			}
		}
	}
	s.Flush()
	abandon(s)

	r := openDurable(t, dir)
	defer r.Close()
	r.dur.mu.Lock()
	recovered, replayed := r.dur.recovered, r.dur.replayed
	r.dur.mu.Unlock()
	if recovered != 3 {
		t.Fatalf("recovered %d tenants, want 3", recovered)
	}
	// Each tenant replays its 40 post-checkpoint records.
	if replayed != 3*(total-half) {
		t.Fatalf("replayed %d WAL records, want %d", replayed, 3*(total-half))
	}
	for _, name := range []string{"hh", "quant", "allq"} {
		tn := r.reg.Get(name)
		if tn == nil {
			t.Fatalf("tenant %s not recovered", name)
		}
		st := tn.Stats()
		if st.SiteCounts[0] != total {
			t.Fatalf("%s: site count %d after recovery, want %d", name, st.SiteCounts[0], total)
		}
	}
	// Values 0..79 ingested once each: every item is a 1/80 fraction, so
	// phi=0.5 has no heavy hitters and the median is 39 or 40 (either side
	// of the even split is a valid eps-approximate answer).
	if hhs, err := r.reg.Get("hh").HeavyHitters(0.5); err != nil || len(hhs) != 0 {
		t.Fatalf("hh query after recovery: %v, %v", hhs, err)
	}
	if f, err := r.reg.Get("hh").Frequency(7); err != nil || f != 1 {
		t.Fatalf("hh frequency after recovery: %d, %v (want 1)", f, err)
	}
	med, err := r.reg.Get("quant").Quantile(0.5)
	if err != nil || med < total/2-1-8 || med > total/2+8 {
		t.Fatalf("quantile after recovery: %d, %v", med, err)
	}
	rank, tot, err := r.reg.Get("allq").Rank(40)
	if err != nil || tot != total || rank < 40-8 || rank > 40+8 {
		t.Fatalf("allq rank after recovery: rank=%d total=%d err=%v", rank, tot, err)
	}

	// The recovered server keeps working: new ingest lands on top of the
	// recovered state and the perturbation sequence does not collide with
	// replayed keys (a collision would under-count the duplicate value).
	for i := 0; i < 10; i++ {
		if acc, _ := r.Ingest([]Record{{Tenant: "allq", Site: 0, Value: 7}}); acc != 1 {
			t.Fatal("post-recovery ingest not accepted")
		}
	}
	r.Flush()
	if st := r.reg.Get("allq").Stats(); st.SiteCounts[0] != total+10 {
		t.Fatalf("post-recovery site count %d, want %d", st.SiteCounts[0], total+10)
	}
}

// TestDurableGracefulRestartNoReplay pins the shutdown contract: Close takes
// a final checkpoint, so a graceful restart recovers from the checkpoint
// alone with zero WAL replay.
func TestDurableGracefulRestartNoReplay(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	mustCreate(t, s, TenantConfig{Name: "g", Kind: KindHH, K: 2, Eps: 0.1})
	for v := 0; v < 50; v++ {
		if acc, _ := s.Ingest([]Record{{Tenant: "g", Site: v % 2, Value: uint64(v % 5)}}); acc != 1 {
			t.Fatal("ingest not accepted")
		}
	}
	s.Close()

	r := openDurable(t, dir)
	defer r.Close()
	r.dur.mu.Lock()
	recovered, replayed := r.dur.recovered, r.dur.replayed
	r.dur.mu.Unlock()
	if recovered != 1 || replayed != 0 {
		t.Fatalf("graceful restart: recovered=%d replayed=%d, want 1 and 0", recovered, replayed)
	}
	st := r.reg.Get("g").Stats()
	if st.SiteCounts[0]+st.SiteCounts[1] != 50 {
		t.Fatalf("site counts %v after graceful restart, want sum 50", st.SiteCounts)
	}
	if f, err := r.reg.Get("g").Frequency(3); err != nil || f != 10 {
		t.Fatalf("frequency after graceful restart: %d, %v (want 10)", f, err)
	}
}

// TestDurableCorruptCheckpointFallback corrupts the newest checkpoint two
// ways — frame-level bit rot, and a valid frame wrapping a payload the
// service cannot decode — and verifies recovery quarantines both and falls
// back to the older checkpoint plus a longer WAL replay, with no data loss.
func TestDurableCorruptCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	mustCreate(t, s, TenantConfig{Name: "c", Kind: KindHH, K: 1, Eps: 0.1})
	ingestN(t, s, "c", 30)
	checkpointAll(t, s) // covers seq 30
	ingestN(t, s, "c", 10)
	tn := s.reg.Get("c")
	for v := 30; v < 60; v++ {
		if acc, _ := s.Ingest([]Record{{Tenant: "c", Site: 0, Value: uint64(v)}}); acc != 1 {
			t.Fatal("ingest not accepted")
		}
	}
	s.Flush()
	checkpointAll(t, s) // covers seq 70
	_ = tn
	abandon(s)

	tenDir := filepath.Join(dir, "tenants", "c")
	flipNewestCheckpoint := func() string {
		t.Helper()
		names, err := filepath.Glob(filepath.Join(tenDir, "ckpt-*.ckpt"))
		if err != nil || len(names) == 0 {
			t.Fatalf("checkpoint files: %v (%v)", names, err)
		}
		newest := names[len(names)-1]
		data, err := os.ReadFile(newest)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(newest, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return newest
	}
	corrupted := flipNewestCheckpoint()

	r := openDurable(t, dir)
	r.dur.mu.Lock()
	quarantined := r.dur.quarantined
	r.dur.mu.Unlock()
	if quarantined != 1 {
		t.Fatalf("quarantined %d checkpoints, want 1", quarantined)
	}
	if _, err := os.Stat(corrupted + ".corrupt"); err != nil {
		t.Fatalf("corrupt checkpoint not renamed: %v", err)
	}
	st := r.reg.Get("c").Stats()
	if st.SiteCounts[0] != 70 {
		t.Fatalf("site count %d after fallback recovery, want 70", st.SiteCounts[0])
	}
	r.Close() // writes fresh checkpoints

	// Semantic corruption: a frame that checksums cleanly but whose payload
	// the service cannot decode (here: a different tenant's). LoadCheckpoint
	// accepts it; the service must quarantine it and fall back.
	store, err := durable.Open(dir, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dten, err := store.Tenant("c")
	if err != nil {
		t.Fatal(err)
	}
	covers, err := dten.Checkpoints()
	if err != nil || len(covers) == 0 {
		t.Fatalf("checkpoints: %v (%v)", covers, err)
	}
	if _, _, err := dten.WriteCheckpoint(covers[len(covers)-1]+1, []byte("not a service payload")); err != nil {
		t.Fatal(err)
	}

	r2 := openDurable(t, dir)
	defer r2.Close()
	r2.dur.mu.Lock()
	quarantined = r2.dur.quarantined
	r2.dur.mu.Unlock()
	if quarantined != 1 {
		t.Fatalf("semantic corruption: quarantined %d, want 1", quarantined)
	}
	if st := r2.reg.Get("c").Stats(); st.SiteCounts[0] != 70 {
		t.Fatalf("site count %d after semantic fallback, want 70", st.SiteCounts[0])
	}
}

// TestDurableTornWALTail truncates the active WAL segment mid-record — the
// torn write a real crash leaves — and verifies recovery repairs the tail,
// loses exactly the torn record, and resumes appending cleanly.
func TestDurableTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	mustCreate(t, s, TenantConfig{Name: "torn", Kind: KindHH, K: 1, Eps: 0.1})
	ingestN(t, s, "torn", 20) // one WAL record per value
	abandon(s)

	segs, err := filepath.Glob(filepath.Join(dir, "tenants", "torn", "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("wal segments: %v (%v)", segs, err)
	}
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}

	r := openDurable(t, dir)
	defer r.Close()
	r.dur.mu.Lock()
	tornTails, replayed := r.dur.tornTails, r.dur.replayed
	r.dur.mu.Unlock()
	if tornTails != 1 || replayed != 19 {
		t.Fatalf("tornTails=%d replayed=%d, want 1 and 19", tornTails, replayed)
	}
	if st := r.reg.Get("torn").Stats(); st.SiteCounts[0] != 19 {
		t.Fatalf("site count %d after torn-tail recovery, want 19", st.SiteCounts[0])
	}
	// Appending resumes on the repaired log.
	if acc, _ := r.Ingest([]Record{{Tenant: "torn", Site: 0, Value: 99}}); acc != 1 {
		t.Fatal("post-repair ingest not accepted")
	}
	r.Flush()
	if st := r.reg.Get("torn").Stats(); st.SiteCounts[0] != 20 {
		t.Fatalf("site count %d after post-repair ingest, want 20", st.SiteCounts[0])
	}
}

// TestDurableDeleteDropsState: deleting a tenant removes its durable state,
// so it does not resurrect on the next boot.
func TestDurableDeleteDropsState(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	mustCreate(t, s, TenantConfig{Name: "gone", Kind: KindHH, K: 1, Eps: 0.1})
	mustCreate(t, s, TenantConfig{Name: "kept", Kind: KindHH, K: 1, Eps: 0.1})
	ingestN(t, s, "gone", 5)
	ingestN(t, s, "kept", 5)
	if !s.reg.Delete("gone", true) {
		t.Fatal("delete failed")
	}
	s.Close()

	r := openDurable(t, dir)
	defer r.Close()
	if r.reg.Get("gone") != nil {
		t.Fatal("deleted tenant resurrected after restart")
	}
	if tn := r.reg.Get("kept"); tn == nil || tn.Stats().SiteCounts[0] != 5 {
		t.Fatalf("kept tenant missing or wrong after restart")
	}
}

// TestDurableHealthz pins the /healthz durability section on a durable
// server: all three fields present (TestHealthzShape pins its absence on a
// non-durable one).
func TestDurableHealthz(t *testing.T) {
	s := openDurable(t, t.TempDir())
	defer s.Close()
	mustCreate(t, s, TenantConfig{Name: "h", Kind: KindHH, K: 1, Eps: 0.1})
	ingestN(t, s, "h", 3)

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var h healthPayload
	if code := jsonDo(t, ts.Client(), "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	d := h.Durability
	if d == nil {
		t.Fatal("durability section missing on a durable server")
	}
	if d.LastCheckpointAgeS == nil || d.WALSegments == nil || d.RecoveredTenants == nil {
		t.Fatalf("durability section incomplete: %+v", d)
	}
	if *d.LastCheckpointAgeS < 0 || *d.WALSegments != 1 || *d.RecoveredTenants != 0 {
		t.Fatalf("durability values: age=%v segments=%d recovered=%d",
			*d.LastCheckpointAgeS, *d.WALSegments, *d.RecoveredTenants)
	}
}

// TestDurableCheckpointConcurrentIngest checkpoints repeatedly while ingest
// runs, then crashes and recovers — the checkpoint/WAL consistency contract
// under real concurrency. Run with -race to check the durMu discipline.
func TestDurableCheckpointConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	mustCreate(t, s, TenantConfig{Name: "cc", Kind: KindAllQ, K: 1, Eps: 0.1})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			checkpointAll(t, s)
		}
	}()
	const n = 2000
	for v := 0; v < n; v += 4 {
		recs := make([]Record, 0, 4)
		for j := 0; j < 4; j++ {
			recs = append(recs, Record{Tenant: "cc", Site: 0, Value: uint64(v + j)})
		}
		if acc, errs := s.Ingest(recs); acc != 4 {
			t.Errorf("ingest at %d: accepted %d, errs %+v", v, acc, errs)
			break
		}
	}
	s.Flush()
	<-done
	abandon(s)

	r := openDurable(t, dir)
	defer r.Close()
	if st := r.reg.Get("cc").Stats(); st.SiteCounts[0] != n {
		t.Fatalf("site count %d after concurrent checkpoint crash, want %d", st.SiteCounts[0], n)
	}
	rank, total, err := r.reg.Get("cc").Rank(1000)
	if err != nil || total != n || rank < 1000-200 || rank > 1000+200 {
		t.Fatalf("rank after recovery: rank=%d total=%d err=%v", rank, total, err)
	}
}
