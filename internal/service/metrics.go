package service

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"disttrack/internal/core/engine"
	"disttrack/internal/obs"
	"disttrack/internal/obs/wireobs"
	"disttrack/internal/remote"
	"disttrack/internal/runtime"
)

// serverMetrics is the server's obs instrumentation: one registry exposed at
// GET /metrics, every family registered up front (so scrapes always see the
// full catalog), and children resolved once per labeled entity. Three update
// disciplines coexist, chosen by path cost:
//
//   - Inline atomics for the engine fast path (engine.Metrics children,
//     resolved per tenant at creation) and the HTTP middleware — lock-free,
//     one atomic per event.
//   - Direct histogram observes on the per-request ingest paths, where one
//     time.Now pair per batch is noise.
//   - Scrape-time mirrors for counters owned elsewhere (cluster stats,
//     sharder totals, wire meters, transport byte counts): a hook runs
//     before each exposition, serialized by the registry, and adds monotone
//     deltas — zero cost off the scrape path.
//
// mu guards the mirror state shared between the scrape hook and tenant
// deletion (bridge delta maps, last-seen totals).
type serverMetrics struct {
	reg   *obs.Registry
	start time.Time

	// Engine fast-path instrumentation, per tenant (see engine.Metrics).
	engFeeds     *obs.CounterVec   // {tenant}
	engRuns      *obs.CounterVec   // {tenant}
	engSplits    *obs.CounterVec   // {tenant}
	engEsc       *obs.CounterVec   // {tenant}
	engAcquires  *obs.CounterVec   // {tenant}
	engCoalesced *obs.CounterVec   // {tenant}
	engSaved     *obs.CounterVec   // {tenant}
	engBoot      *obs.CounterVec   // {tenant}
	engSlow      *obs.HistogramVec // {tenant}
	engQuiesce   *obs.HistogramVec // {tenant}

	// Cluster and tenant bookkeeping mirrors, per tenant.
	clProcessed *obs.CounterVec // {tenant}
	clBatches   *obs.CounterVec // {tenant}
	clDropped   *obs.CounterVec // {tenant}
	clEsc       *obs.CounterVec // {tenant}
	clQueue     *obs.GaugeVec   // {tenant}
	tenSent     *obs.CounterVec // {tenant}
	tenDropped  *obs.CounterVec // {tenant}
	tenTies     *obs.CounterVec // {tenant}

	// QoS admission mirrors, per tenant.
	tenThrottled *obs.CounterVec // {tenant}
	tenQueued    *obs.GaugeVec   // {tenant}

	// Query-path instrumentation.
	queries     *obs.CounterVec // {tenant, query}
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	etagHits    *obs.Counter

	// bridge mirrors each tenant's wire.Meter (the paper's word-cost
	// accounting) under that tenant's quiescent query lock.
	bridge *wireobs.Bridge

	// Ingest pipeline (sharder) instrumentation.
	shardDepth   []*obs.Gauge // per shard, resolved at construction
	accepted     *obs.Counter
	rejected     *obs.Counter
	throttled    *obs.Counter
	lost         *obs.Counter
	batchRecords *obs.Histogram
	ingestSecs   *obs.Histogram

	// Networked ingest mirrors (coord role; zero-valued otherwise).
	remoteNodes        *obs.Gauge
	remoteFrames       *obs.Counter
	remoteValues       *obs.Counter
	remoteDups         *obs.Counter
	remoteRejFrames    *obs.Counter
	remoteRefused      *obs.Counter
	remoteEpochRefused *obs.Counter
	remoteFlushes      *obs.Counter
	remoteRejValues    *obs.Counter
	remoteThrValues    *obs.Counter
	remoteBytesIn      *obs.Counter
	remoteBytesOut     *obs.Counter
	remoteDegraded     *obs.Gauge
	remoteBridge       *wireobs.Bridge

	// Per-site-node fault state (coord role): connection and breaker.
	nodeConnected    *obs.GaugeVec   // {node}
	nodeBreakerState *obs.GaugeVec   // {node}; 0 closed, 1 open, 2 half-open
	nodeBreakerTrips *obs.CounterVec // {node}

	// Durable plane (checkpoints + WAL; zero-valued without a data dir).
	ckptTotal   *obs.Counter
	ckptBytes   *obs.Counter
	ckptSecs    *obs.Histogram
	ckptErrors  *obs.Counter
	walAppended *obs.Counter
	walReplayed *obs.Counter
	walFsync    *obs.Counter
	walErrors   *obs.Counter

	// Membership plane (site add/remove, tenant migration).
	memChanges    *obs.Counter
	migrations    *obs.Counter
	migrationSecs *obs.Histogram

	// HTTP API instrumentation.
	httpReqs     *obs.CounterVec   // {route, method, code}
	httpSecs     *obs.HistogramVec // {route}
	httpInflight *obs.Gauge

	// Scrape-hook mirror state (guarded by the registry's hook serialization
	// plus forgetTenant, see syncObs).
	lastAccepted    int64
	lastRejected    int64
	lastThrottled   int64
	lastLost        int64
	lastRemote      remote.IngestStats
	lastRemoteRejVs int64
	lastRemoteThrVs int64
	lastNodeTrips   map[string]int64
	lastWALAppended int64
	lastWALFsync    int64
}

// newServerMetrics registers the server's full metric catalog on a fresh
// registry. shards fixes the shard-depth gauge set.
func newServerMetrics(shards int) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg, start: time.Now()}

	m.engFeeds = reg.NewCounterVec("disttrack_engine_feeds_total",
		"Fast-path arrivals applied by the tracker engine.", "tenant")
	m.engRuns = reg.NewCounterVec("disttrack_engine_batch_runs_total",
		"Escalation-free runs consumed by FeedLocalBatch.", "tenant")
	m.engSplits = reg.NewCounterVec("disttrack_engine_batch_splits_total",
		"Batch runs ended early by a threshold crossing.", "tenant")
	m.engEsc = reg.NewCounterVec("disttrack_engine_escalations_total",
		"Coordinator slow-path entries.", "tenant")
	m.engAcquires = reg.NewCounterVec("disttrack_engine_slow_path_acquires_total",
		"Full lock-set acquisitions by the escalation path (== escalations without coalescing).", "tenant")
	m.engCoalesced = reg.NewCounterVec("disttrack_engine_coalesced_runs_total",
		"Batch runs applied inline under an already-held slow-path hold.", "tenant")
	m.engSaved = reg.NewCounterVec("disttrack_engine_saved_acquires_total",
		"Lock-set round trips avoided by slow-path coalescing.", "tenant")
	m.engBoot = reg.NewCounterVec("disttrack_engine_boot_handoffs_total",
		"Bootstrap-to-tracking transitions.", "tenant")
	m.engSlow = reg.NewHistogramVec("disttrack_engine_slow_path_hold_seconds",
		"Seconds each escalation held the coordinator and every site lock.",
		obs.DurationBuckets(), "tenant")
	m.engQuiesce = reg.NewHistogramVec("disttrack_engine_quiesce_hold_seconds",
		"Seconds each quiescent section (consistent query) held the protocol locks.",
		obs.DurationBuckets(), "tenant")

	m.clProcessed = reg.NewCounterVec("disttrack_cluster_processed_total",
		"Arrivals fully fed to the tracker by the cluster's site goroutines.", "tenant")
	m.clBatches = reg.NewCounterVec("disttrack_cluster_batches_total",
		"Batch deliveries processed by the cluster.", "tenant")
	m.clDropped = reg.NewCounterVec("disttrack_cluster_dropped_total",
		"Queued arrivals discarded by a cluster stop.", "tenant")
	m.clEsc = reg.NewCounterVec("disttrack_cluster_escalations_total",
		"Fast-path arrivals that escalated, as observed by the cluster.", "tenant")
	m.clQueue = reg.NewGaugeVec("disttrack_cluster_queue_depth",
		"Deliveries currently queued across the tenant's site channels.", "tenant")
	m.tenSent = reg.NewCounterVec("disttrack_tenant_sent_total",
		"Arrivals successfully enqueued to the tenant's cluster.", "tenant")
	m.tenDropped = reg.NewCounterVec("disttrack_tenant_dropped_total",
		"Arrivals lost because the tenant closed mid-send.", "tenant")
	m.tenTies = reg.NewCounterVec("disttrack_tenant_ties_total",
		"Symbolic-perturbation overflows (ε guarantee degrades past 2^24 copies).", "tenant")
	m.tenThrottled = reg.NewCounterVec("disttrack_admission_throttled_total",
		"Records denied by the tenant's QoS admission (rate limit or queue share).", "tenant")
	m.tenQueued = reg.NewGaugeVec("disttrack_admission_queued",
		"Records accepted into the shard pipeline but not yet delivered, per tenant.", "tenant")

	m.queries = reg.NewCounterVec("disttrack_queries_total",
		"Tenant queries served, by query shape.", "tenant", "query")
	m.cacheHits = reg.NewCounter("disttrack_query_cache_hits_total",
		"Queries answered from the version-keyed snapshot cache.")
	m.cacheMisses = reg.NewCounter("disttrack_query_cache_misses_total",
		"Queries that required a quiescent read of coordinator state.")
	m.etagHits = reg.NewCounter("disttrack_query_cache_etag_hits_total",
		"Conditional queries answered 304 Not Modified from the version ETag.")

	m.bridge = wireobs.New(reg, "disttrack_wire")

	m.shardDepth = make([]*obs.Gauge, shards)
	depth := reg.NewGaugeVec("disttrack_shard_queue_depth",
		"Messages queued on each ingest worker shard.", "shard")
	for i := range m.shardDepth {
		m.shardDepth[i] = depth.With(strconv.Itoa(i))
	}
	m.accepted = reg.NewCounter("disttrack_ingest_accepted_total",
		"Records accepted by the ingest pipeline.")
	m.rejected = reg.NewCounter("disttrack_ingest_rejected_total",
		"Records rejected at validation.")
	m.throttled = reg.NewCounter("disttrack_ingest_throttled_total",
		"Records denied by per-tenant QoS admission, both edges.")
	m.lost = reg.NewCounter("disttrack_ingest_lost_total",
		"Records accepted but undeliverable (tenant deleted mid-flight).")
	m.batchRecords = reg.NewHistogram("disttrack_ingest_batch_records",
		"Records per ingest batch.", obs.SizeBuckets())
	m.ingestSecs = reg.NewHistogram("disttrack_ingest_seconds",
		"Seconds spent validating and enqueuing one ingest batch.", obs.DurationBuckets())

	m.remoteNodes = reg.NewGauge("disttrack_remote_nodes",
		"Live site-node connections on the networked ingest listener.")
	m.remoteFrames = reg.NewCounter("disttrack_remote_frames_total",
		"Batch frames applied by the networked ingest path.")
	m.remoteValues = reg.NewCounter("disttrack_remote_values_total",
		"Values delivered to the pipeline by the networked ingest path.")
	m.remoteDups = reg.NewCounter("disttrack_remote_duplicates_total",
		"Replayed frames dropped by sequence deduplication.")
	m.remoteRejFrames = reg.NewCounter("disttrack_remote_rejected_frames_total",
		"Frames refused by the ingest pipeline.")
	m.remoteRefused = reg.NewCounter("disttrack_remote_refused_hellos_total",
		"Node handshakes refused by an open per-node reconnect breaker.")
	m.remoteEpochRefused = reg.NewCounter("disttrack_remote_epoch_refused_hellos_total",
		"Node handshakes refused for carrying a stale membership epoch.")
	m.remoteFlushes = reg.NewCounter("disttrack_remote_flushes_total",
		"Network flush barriers served.")
	m.remoteRejValues = reg.NewCounter("disttrack_remote_rejected_values_total",
		"Values filtered by per-value validation on the networked ingest path.")
	m.remoteThrValues = reg.NewCounter("disttrack_remote_throttled_values_total",
		"Values dropped by per-tenant QoS admission on the networked ingest path.")
	m.remoteBytesIn = reg.NewCounter("disttrack_remote_bytes_in_total",
		"Encoded frame bytes read from site nodes.")
	m.remoteBytesOut = reg.NewCounter("disttrack_remote_bytes_out_total",
		"Encoded frame bytes written to site nodes.")
	m.remoteDegraded = reg.NewGauge("disttrack_remote_degraded",
		"1 while a known site node is disconnected (queries served from its last state).")
	m.nodeConnected = reg.NewGaugeVec("disttrack_remote_node_connected",
		"1 while the site node's connection is live.", "node")
	m.nodeBreakerState = reg.NewGaugeVec("disttrack_remote_node_breaker_state",
		"Per-node reconnect breaker state: 0 closed, 1 open, 2 half-open.", "node")
	m.nodeBreakerTrips = reg.NewCounterVec("disttrack_remote_node_breaker_trips_total",
		"Times the node's reconnect breaker tripped open.", "node")
	m.lastNodeTrips = make(map[string]int64)
	m.remoteBridge = wireobs.New(reg, "disttrack_remote_wire")

	m.ckptTotal = reg.NewCounter("disttrack_checkpoint_total",
		"Durable checkpoints completed.")
	m.ckptBytes = reg.NewCounter("disttrack_checkpoint_bytes",
		"Encoded bytes written by durable checkpoints.")
	m.ckptSecs = reg.NewHistogram("disttrack_checkpoint_duration_seconds",
		"Seconds per durable checkpoint, capture through disk write.", obs.DurationBuckets())
	m.ckptErrors = reg.NewCounter("disttrack_checkpoint_errors_total",
		"Durable checkpoint or durable-state cleanup failures.")
	m.walAppended = reg.NewCounter("disttrack_wal_appended_total",
		"Record batches appended to tenant ingest WALs.")
	m.walReplayed = reg.NewCounter("disttrack_wal_replayed_total",
		"WAL record batches replayed during boot recovery.")
	m.walFsync = reg.NewCounter("disttrack_wal_fsync_total",
		"fsync calls issued by tenant ingest WALs.")
	m.walErrors = reg.NewCounter("disttrack_wal_errors_total",
		"WAL append failures (the batch was still delivered; durability fails open).")

	m.memChanges = reg.NewCounter("disttrack_membership_changes_total",
		"Completed live site add/remove reconfigurations (each bumps the membership epoch).")
	m.migrations = reg.NewCounter("disttrack_migrations_total",
		"Completed tenant migrations between shard workers.")
	m.migrationSecs = reg.NewHistogram("disttrack_migration_duration_seconds",
		"Seconds per tenant migration, reroute through registry swap.", obs.DurationBuckets())

	m.httpReqs = reg.NewCounterVec("disttrack_http_requests_total",
		"HTTP API requests, by mux route, method and status code.", "route", "method", "code")
	m.httpSecs = reg.NewHistogramVec("disttrack_http_request_seconds",
		"HTTP API request latency by mux route.", obs.DurationBuckets(), "route")
	m.httpInflight = reg.NewGauge("disttrack_http_inflight_requests",
		"HTTP API requests currently being served.")

	reg.NewGaugeFunc("disttrack_uptime_seconds",
		"Seconds since the server's metrics plane was created.",
		func() float64 { return time.Since(m.start).Seconds() })
	registerBuildInfo(reg)
	return m
}

// registerBuildInfo exports a constant-1 gauge labeled with the binary's
// embedded build metadata (shared by server and site-node registries).
func registerBuildInfo(reg *obs.Registry) {
	version, goVersion := buildMeta()
	reg.NewGaugeVec("disttrack_build_info",
		"Constant 1, labeled with the binary's build metadata.",
		"version", "goversion").With(version, goVersion).Set(1)
}

// buildMeta returns the module version and Go toolchain version from the
// binary's embedded build info ("unknown" when absent).
func buildMeta() (version, goVersion string) {
	version, goVersion = "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
	}
	return version, goVersion
}

// addDelta adds the monotone delta between cur and *last to c and advances
// *last. A source reset (cur below last) re-bases without a negative add, so
// the exported counter stays monotone.
func addDelta(c *obs.Counter, last *int64, cur int64) {
	if cur > *last {
		c.Add(cur - *last)
	}
	*last = cur
}

// tenantMetrics is one tenant's resolved instrumentation: the engine's
// fast-path children (updated inline by the tracker), the cluster mirror
// state, and the query counters. Children are resolved exactly once here, at
// tenant creation, so no hot path ever touches a family map.
type tenantMetrics struct {
	sm  *serverMetrics
	eng engine.Metrics
	cl  runtime.ClusterMetrics

	sent      *obs.Counter
	dropped   *obs.Counter
	ties      *obs.Counter
	throttled *obs.Counter
	queued    *obs.Gauge

	qHeavy    *obs.Counter
	qQuantile *obs.Counter
	qRank     *obs.Counter
	qFreq     *obs.Counter

	lastSent, lastDropped, lastTies, lastThrottled int64
}

// tenant resolves the per-tenant children for name.
func (m *serverMetrics) tenant(name string) *tenantMetrics {
	return &tenantMetrics{
		sm: m,
		eng: engine.Metrics{
			Feeds:            m.engFeeds.With(name),
			BatchRuns:        m.engRuns.With(name),
			BatchSplits:      m.engSplits.With(name),
			Escalations:      m.engEsc.With(name),
			SlowPathAcquires: m.engAcquires.With(name),
			CoalescedRuns:    m.engCoalesced.With(name),
			SavedAcquires:    m.engSaved.With(name),
			BootHandoffs:     m.engBoot.With(name),
			SlowPathHold:     m.engSlow.With(name),
			QuiesceHold:      m.engQuiesce.With(name),
		},
		cl: runtime.ClusterMetrics{
			Processed:   m.clProcessed.With(name),
			Batches:     m.clBatches.With(name),
			Dropped:     m.clDropped.With(name),
			Escalations: m.clEsc.With(name),
			QueueDepth:  m.clQueue.With(name),
		},
		sent:      m.tenSent.With(name),
		dropped:   m.tenDropped.With(name),
		ties:      m.tenTies.With(name),
		throttled: m.tenThrottled.With(name),
		queued:    m.tenQueued.With(name),
		qHeavy:    m.queries.With(name, "heavy"),
		qQuantile: m.queries.With(name, "quantile"),
		qRank:     m.queries.With(name, "rank"),
		qFreq:     m.queries.With(name, "frequency"),
	}
}

// forgetTenant removes a deleted tenant's exported series and mirror state,
// so the families do not grow without bound under tenant churn. The bridge
// cleanup runs under the registry's hook lock because the delta map is
// otherwise owned by the scrape hook.
func (m *serverMetrics) forgetTenant(name string) {
	for _, v := range []*obs.CounterVec{
		m.engFeeds, m.engRuns, m.engSplits, m.engEsc, m.engBoot,
		m.engAcquires, m.engCoalesced, m.engSaved,
		m.clProcessed, m.clBatches, m.clDropped, m.clEsc,
		m.tenSent, m.tenDropped, m.tenTies, m.tenThrottled,
	} {
		v.Remove(name)
	}
	m.engSlow.Remove(name)
	m.engQuiesce.Remove(name)
	m.clQueue.Remove(name)
	m.tenQueued.Remove(name)
	for _, q := range []string{"heavy", "quantile", "rank", "frequency"} {
		m.queries.Remove(name, q)
	}
	m.reg.WithHookLock(func() { m.bridge.Forget(name) })
}

// syncObs is the server's scrape hook: it mirrors every externally-owned
// counter into the metrics plane immediately before an exposition. The
// registry serializes hooks, so the mirror state needs no locking of its
// own. Per-tenant meter reads run under each tenant's quiescent query lock —
// the only safe way to read a wire.Meter — which briefly stalls that
// tenant's ingest, same as a stats request.
func (s *Server) syncObs() {
	m := s.met
	for _, t := range s.reg.all() {
		t.syncObs()
	}
	addDelta(m.accepted, &m.lastAccepted, s.sh.Accepted())
	addDelta(m.rejected, &m.lastRejected, s.sh.Rejected())
	addDelta(m.throttled, &m.lastThrottled, s.sh.Throttled())
	addDelta(m.lost, &m.lastLost, s.sh.Lost())
	for i, d := range s.sh.QueueDepths() {
		m.shardDepth[i].SetInt(int64(d))
	}
	if ri := s.remote.Load(); ri != nil {
		ri.syncObs(m)
	}
	if s.dur != nil {
		var appended, fsyncs int64
		for _, t := range s.reg.all() {
			if t.dur != nil {
				st := t.dur.WALStats()
				appended += st.AppendedRecords
				fsyncs += st.Fsyncs
			}
		}
		addDelta(m.walAppended, &m.lastWALAppended, appended)
		addDelta(m.walFsync, &m.lastWALFsync, fsyncs)
	}
}

// syncObs mirrors the tenant's cluster counters, send bookkeeping and
// communication meter. Runs only from the registry's scrape hook.
func (t *Tenant) syncObs() {
	tm := t.tm
	if tm == nil {
		return
	}
	t.cluster().SyncMetrics(&tm.cl)
	addDelta(tm.sent, &tm.lastSent, t.sent.Load())
	addDelta(tm.dropped, &tm.lastDropped, t.dropped.Load())
	addDelta(tm.ties, &tm.lastTies, t.ties.Load())
	addDelta(tm.throttled, &tm.lastThrottled, t.throttled.Load())
	tm.queued.SetInt(t.queued.Load())
	t.cluster().Query(func() {
		tm.sm.bridge.Sync(t.cfg.Name, t.meter())
	})
}

// syncObs mirrors the networked ingest path's transport counters and its
// per-tenant wire meter. Runs only from the registry's scrape hook.
func (ri *RemoteIngest) syncObs(m *serverMetrics) {
	st := ri.srv.Stats()
	m.remoteNodes.SetInt(int64(st.Nodes))
	addDelta(m.remoteFrames, &m.lastRemote.Frames, st.Frames)
	addDelta(m.remoteValues, &m.lastRemote.Values, st.Values)
	addDelta(m.remoteDups, &m.lastRemote.Duplicates, st.Duplicates)
	addDelta(m.remoteRejFrames, &m.lastRemote.Rejected, st.Rejected)
	addDelta(m.remoteRefused, &m.lastRemote.Refused, st.Refused)
	addDelta(m.remoteEpochRefused, &m.lastRemote.EpochRefused, st.EpochRefused)
	addDelta(m.remoteFlushes, &m.lastRemote.Flushes, st.Flushes)
	addDelta(m.remoteBytesIn, &m.lastRemote.BytesIn, st.BytesIn)
	addDelta(m.remoteBytesOut, &m.lastRemote.BytesOut, st.BytesOut)
	degraded := int64(0)
	for node, ns := range ri.srv.NodeStates() {
		if ns.Connected {
			m.nodeConnected.With(node).SetInt(1)
		} else {
			m.nodeConnected.With(node).SetInt(0)
			degraded = 1
		}
		m.nodeBreakerState.With(node).SetInt(int64(ns.Breaker.State))
		last := m.lastNodeTrips[node]
		trips := m.nodeBreakerTrips.With(node)
		addDelta(trips, &last, ns.Breaker.Trips)
		m.lastNodeTrips[node] = last
	}
	m.remoteDegraded.SetInt(degraded)
	ri.mu.Lock()
	addDelta(m.remoteRejValues, &m.lastRemoteRejVs, ri.rejected)
	addDelta(m.remoteThrValues, &m.lastRemoteThrVs, ri.throttled)
	m.remoteBridge.Sync("ingest", &ri.meter)
	ri.mu.Unlock()
}

// instrumentHTTP wraps the API mux with request counting, latency and
// in-flight instrumentation. The route label is the mux pattern that will
// serve the request (resolved without dispatching), so label cardinality is
// bounded by the route table, not by client-chosen paths.
func (m *serverMetrics) instrumentHTTP(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, route := mux.Handler(r)
		if route == "" {
			route = "none"
		}
		m.httpInflight.Add(1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		mux.ServeHTTP(sw, r)
		m.httpInflight.Add(-1)
		m.httpSecs.With(route).Observe(time.Since(t0).Seconds())
		m.httpReqs.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
	})
}

// statusWriter records the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
