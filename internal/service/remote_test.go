package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"disttrack/internal/oracle"
	"disttrack/internal/runtime"
	"disttrack/internal/stream"
)

// jsonDo issues a request and decodes the JSON response into out.
func jsonDo(t *testing.T, client *http.Client, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// startCoord brings up a server with the networked ingest listener.
func startCoord(t *testing.T) (*Server, *RemoteIngest) {
	t.Helper()
	srv := New(Config{})
	ri, err := srv.ServeRemote("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, ri
}

func startSiteNode(t *testing.T, name, upstream string) *SiteNode {
	t.Helper()
	n, err := NewSiteNode(SiteNodeConfig{
		Node:     name,
		Upstream: upstream,
		Forward:  runtime.ForwarderConfig{BatchSize: 64, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func mustCreate(t *testing.T, srv *Server, tc TenantConfig) {
	t.Helper()
	if _, err := srv.Registry().Create(tc); err != nil {
		t.Fatal(err)
	}
}

// TestDistributedMatchesInProcess is the distributed end-to-end test the
// tentpole demands: a coordinator and two site nodes over localhost TCP
// must serve the same heavy-hitter and quantile answers (within tracker
// error bounds) as the in-process shard path fed identical records — and
// keep doing so across a site disconnect/reconnect, with no arrival lost or
// double-counted.
func TestDistributedMatchesInProcess(t *testing.T) {
	const (
		eps    = 0.05
		phi    = 0.1
		hhK    = 4
		aqK    = 2
		hhN    = 40000
		aqN    = 8000
		half   = hhN / 2
		aqHalf = aqN / 2
	)
	coord, ri := startCoord(t)
	ref := New(Config{})
	t.Cleanup(ref.Close)
	for _, srv := range []*Server{coord, ref} {
		mustCreate(t, srv, TenantConfig{Name: "clicks", Kind: KindHH, K: hhK, Eps: eps})
		mustCreate(t, srv, TenantConfig{Name: "latency", Kind: KindAllQ, K: aqK, Eps: eps})
	}
	nodes := []*SiteNode{
		startSiteNode(t, "site-a", ri.Addr()),
		startSiteNode(t, "site-b", ri.Addr()),
	}
	// Site nodes split the tenants' sites between them: site-a owns the
	// lower half, site-b the upper half.
	nodeFor := func(site, k int) *SiteNode { return nodes[site*2/k] }

	o := oracle.New()
	gen := stream.Zipf(5000, hhN, 1.3, 42)
	hhRecs := make([]Record, 0, hhN)
	for i := 0; ; i++ {
		x, ok := gen.Next()
		if !ok {
			break
		}
		hhRecs = append(hhRecs, Record{Tenant: "clicks", Site: i % hhK, Value: x})
		o.Add(x)
	}
	// Distinct quantile values (a shuffled permutation of 0..aqN) make the
	// rank of any answer exact: rank(v) = v.
	aqRecs := make([]Record, 0, aqN)
	perm := stream.Uniform(1<<30, aqN, 7)
	for i := 0; i < aqN; i++ {
		r, _ := perm.Next()
		j := int(r % uint64(i+1))
		aqRecs = append(aqRecs, Record{})
		copy(aqRecs[j+1:], aqRecs[j:])
		aqRecs[j] = Record{Tenant: "latency", Site: i % aqK, Value: uint64(i)}
	}

	ingestVia := func(recs []Record, k int) {
		for _, rec := range recs {
			n := nodeFor(rec.Site, k)
			if acc, errs := n.Ingest([]Record{rec}); acc != 1 {
				t.Fatalf("site node rejected %+v: %v", rec, errs)
			}
		}
	}

	// Phase 1: first half through the network, with the reference server
	// fed identically in process.
	ingestVia(hhRecs[:half], hhK)
	ingestVia(aqRecs[:aqHalf], aqK)

	// Kill site-a's connection mid-stream: the node must heal and resync.
	if !ri.DisconnectNode("site-a") {
		t.Fatal("site-a was not connected")
	}

	// Phase 2: the rest, straight through the (reconnecting) nodes.
	ingestVia(hhRecs[half:], hhK)
	ingestVia(aqRecs[aqHalf:], aqK)
	for _, n := range nodes {
		if err := n.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if nodes[0].Stats().Reconnects < 1 {
		t.Fatal("site-a never recorded its reconnect")
	}

	if acc, errs := ref.Ingest(append(append([]Record{}, hhRecs...), aqRecs...)); acc != hhN+aqN {
		t.Fatalf("reference ingest accepted %d: %v", acc, errs)
	}
	ref.Flush()

	// Exactly-once across the disconnect: every arrival processed, none
	// twice, on both paths.
	for _, tc := range []struct {
		name string
		want int64
	}{{"clicks", hhN}, {"latency", aqN}} {
		for label, srv := range map[string]*Server{"coord": coord, "ref": ref} {
			st := srv.Registry().Get(tc.name).Stats()
			if st.Processed != tc.want {
				t.Errorf("%s %s processed %d arrivals, want exactly %d",
					label, tc.name, st.Processed, tc.want)
			}
		}
	}

	// Heavy hitters: both paths must satisfy the ε-contract against the
	// exact oracle, hence agree with each other up to items within ε of
	// the φ boundary.
	n := float64(o.Len())
	for label, srv := range map[string]*Server{"coord": coord, "ref": ref} {
		tenant := srv.Registry().Get("clicks")
		entries, err := tenant.HeavyHitters(phi)
		if err != nil {
			t.Fatal(err)
		}
		reported := map[uint64]bool{}
		for _, e := range entries {
			reported[e.Item] = true
			if float64(o.Count(e.Item)) < (phi-eps)*n {
				t.Errorf("%s: false positive %d (freq %d of %d)", label, e.Item, o.Count(e.Item), o.Len())
			}
		}
		for _, x := range o.HeavyHitters(phi) {
			if !reported[x] {
				t.Errorf("%s: missed heavy hitter %d (freq %d of %d)", label, x, o.Count(x), o.Len())
			}
		}
	}

	// Quantiles: with distinct values 0..aqN-1, rank(v) = v, so the
	// answer must sit within ε·n of φ·n.
	for _, q := range []float64{0.1, 0.5, 0.9} {
		for label, srv := range map[string]*Server{"coord": coord, "ref": ref} {
			v, err := srv.Registry().Get("latency").Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if diff := float64(v) - q*aqN; diff > eps*aqN || diff < -eps*aqN {
				t.Errorf("%s: quantile(%g) = %d, outside %g±%g of n=%d",
					label, q, v, q*aqN, eps*aqN, aqN)
			}
		}
	}

	// The transport attributed traffic to both tenants.
	rs := ri.Stats()
	if rs.Frames == 0 || len(rs.Tenants) != 2 {
		t.Fatalf("remote stats missing attribution: %+v", rs)
	}
	for _, tc := range rs.Tenants {
		if tc.Words == 0 {
			t.Errorf("tenant %q has no attributed words", tc.Tenant)
		}
	}
}

// TestDistributedRejections exercises the validation split between node and
// coordinator: local rejects are immediate, unknown tenants and
// out-of-range values are refused upstream and surfaced in stats.
func TestDistributedRejections(t *testing.T) {
	coord, ri := startCoord(t)
	mustCreate(t, coord, TenantConfig{Name: "q", Kind: KindQuantile, K: 2, Eps: 0.1})
	node := startSiteNode(t, "edge", ri.Addr())

	// Locally detectable rejects.
	acc, errs := node.Ingest([]Record{
		{Tenant: "", Site: 0, Value: 1},
		{Tenant: "q", Site: -1, Value: 1},
		{Tenant: "q", Site: 0, Value: 1},
	})
	if acc != 1 || len(errs) != 2 {
		t.Fatalf("accepted %d rejected %d, want 1/2: %v", acc, len(errs), errs)
	}

	// Unknown tenant: accepted locally, refused upstream.
	if acc, _ := node.Ingest([]Record{{Tenant: "ghost", Site: 0, Value: 1}}); acc != 1 {
		t.Fatal("unknown tenant should be accepted locally")
	}
	// Out-of-range value for a perturbed kind: filtered upstream.
	if acc, _ := node.Ingest([]Record{{Tenant: "q", Site: 0, Value: MaxPerturbedValue}}); acc != 1 {
		t.Fatal("out-of-range value should be accepted locally")
	}
	if err := node.Flush(); err != nil {
		t.Fatal(err)
	}
	st := node.Stats()
	if st.UpstreamReject < 1 || st.LastReject == "" {
		t.Fatalf("upstream rejection not surfaced: %+v", st)
	}
	deadline := time.Now().Add(2 * time.Second)
	for ri.Stats().RejectedValues < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("value filter not counted: %+v", ri.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	// Exactly the one valid record made it.
	coord.Flush()
	if got := coord.Registry().Get("q").Stats().Processed; got != 1 {
		t.Fatalf("processed %d, want 1", got)
	}
}

// TestDistributedHTTP drives the same topology through the HTTP surfaces:
// the site node's ingest handler and the coordinator's /v1/remote stats.
func TestDistributedHTTP(t *testing.T) {
	coord, ri := startCoord(t)
	mustCreate(t, coord, TenantConfig{Name: "hits", Kind: KindHH, K: 1, Eps: 0.1})
	node := startSiteNode(t, "edge-http", ri.Addr())

	nodeSrv := httptest.NewServer(node.Handler())
	defer nodeSrv.Close()
	coordSrv := httptest.NewServer(coord.Handler())
	defer coordSrv.Close()
	client := nodeSrv.Client()

	var ing ingestResponse
	code := jsonDo(t, client, http.MethodPost, nodeSrv.URL+"/v1/ingest", map[string]any{
		"records": []map[string]any{
			{"tenant": "hits", "site": 0, "value": 7},
			{"tenant": "hits", "site": 0, "value": 7},
			{"tenant": "hits", "site": 0, "value": 9},
		},
	}, &ing)
	if code != http.StatusOK || ing.Accepted != 3 {
		t.Fatalf("ingest: code %d resp %+v", code, ing)
	}
	var fl map[string]any
	if code := jsonDo(t, client, http.MethodPost, nodeSrv.URL+"/v1/flush", nil, &fl); code != http.StatusOK {
		t.Fatalf("flush code %d", code)
	}
	var freq struct {
		Count int64 `json:"count"`
	}
	code = jsonDo(t, client, http.MethodGet, coordSrv.URL+"/v1/tenants/hits/freq?item=7", nil, &freq)
	if code != http.StatusOK || freq.Count != 2 {
		t.Fatalf("freq after network flush: code %d count %d, want 2", code, freq.Count)
	}
	var rs RemoteStats
	if code := jsonDo(t, client, http.MethodGet, coordSrv.URL+"/v1/remote", nil, &rs); code != http.StatusOK {
		t.Fatalf("/v1/remote code %d", code)
	}
	if rs.Nodes != 1 || rs.Frames == 0 {
		t.Fatalf("remote stats = %+v", rs)
	}
	var health map[string]any
	if code := jsonDo(t, client, http.MethodGet, nodeSrv.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatal("site node healthz failed")
	}

	// A server without remote ingest reports the endpoint unsupported.
	plain := New(Config{})
	defer plain.Close()
	plainSrv := httptest.NewServer(plain.Handler())
	defer plainSrv.Close()
	var e errBody
	if code := jsonDo(t, client, http.MethodGet, plainSrv.URL+"/v1/remote", nil, &e); code != http.StatusNotFound {
		t.Fatalf("/v1/remote on a standalone server: code %d, want 404", code)
	}
}

// TestSiteNodeCloseTimeout pins the bounded drain: with the coordinator
// gone for good, Close must give up after DrainTimeout instead of retrying
// forever.
func TestSiteNodeCloseTimeout(t *testing.T) {
	coord, ri := startCoord(t)
	mustCreate(t, coord, TenantConfig{Name: "x", Kind: KindHH, K: 1, Eps: 0.1})
	node, err := NewSiteNode(SiteNodeConfig{
		Node:         "doomed",
		Upstream:     ri.Addr(),
		DrainTimeout: 200 * time.Millisecond,
		Forward:      runtime.ForwarderConfig{BatchSize: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Take the coordinator away entirely, then buffer work the node can
	// never deliver.
	coord.Close()
	if acc, _ := node.Ingest([]Record{{Tenant: "x", Site: 0, Value: 1}}); acc != 1 {
		t.Fatal("ingest should accept locally")
	}
	start := time.Now()
	err = node.Close()
	if err == nil {
		t.Fatal("close with an unreachable coordinator should report the abandoned drain")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("close took %v, want ~DrainTimeout", elapsed)
	}
}

// TestServeRemoteSingleListener pins the one-listener-per-server contract.
func TestServeRemoteSingleListener(t *testing.T) {
	_, coordRI := startCoord(t)
	_ = coordRI
	srv := New(Config{})
	t.Cleanup(srv.Close)
	if _, err := srv.ServeRemote("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ServeRemote("127.0.0.1:0"); err == nil {
		t.Fatal("second ServeRemote should fail")
	}
}
