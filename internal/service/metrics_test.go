// Metrics-plane integration tests: scrape GET /metrics over the wire, check
// the exposition parses, counters stay monotone across scrapes, and the
// mirrored wire-cost counters conserve the tenant's own accounting
// (sum over dir of disttrack_wire_* == TenantStats Msgs/Words).
package service_test

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"disttrack/internal/service"
)

// scrape fetches url and parses the text exposition into series → value.
// Lines are `name{labels} value`; the full left-hand side is the map key.
func scrape(t *testing.T, client *http.Client, url string) map[string]float64 {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET %s: Content-Type %q", url, ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// sumSeries sums every series of family whose label block contains all wants.
func sumSeries(m map[string]float64, family string, wants ...string) float64 {
	var sum float64
outer:
	for series, v := range m {
		if series != family && !strings.HasPrefix(series, family+"{") {
			continue
		}
		for _, w := range wants {
			if !strings.Contains(series, w) {
				continue outer
			}
		}
		sum += v
	}
	return sum
}

// waitProcessed polls the tenant stats endpoint until the pipeline has fully
// fed want arrivals to the tracker (ingest is asynchronous past the shard
// queues).
func waitProcessed(t *testing.T, client *http.Client, url string, want int64) service.TenantStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st service.TenantStats
		if code := jsonCall(t, client, "GET", url, nil, &st); code != http.StatusOK {
			t.Fatalf("stats: status %d", code)
		}
		if st.Processed >= want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not drain: processed %d, want %d", st.Processed, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMetricsScrapeAndConservation(t *testing.T) {
	srv := service.New(service.Config{Shards: 2, ShardQueue: 16, SiteBuffer: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	for _, tc := range []service.TenantConfig{
		{Name: "clicks", Kind: service.KindHH, K: 4, Eps: 0.05},
		{Name: "latency", Kind: service.KindQuantile, K: 4, Eps: 0.05, Phis: []float64{0.5}},
	} {
		if code := jsonCall(t, client, "POST", ts.URL+"/v1/tenants", tc, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", tc.Name, code)
		}
	}

	const n = 2000
	recs := make([]service.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, service.Record{Tenant: "clicks", Site: i % 4, Value: uint64(i % 37)})
	}
	if code := jsonCall(t, client, "POST", ts.URL+"/v1/ingest",
		map[string]any{"records": recs}, nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	if code := jsonCall(t, client, "POST", ts.URL+"/v1/flush", nil, nil); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	before := waitProcessed(t, client, ts.URL+"/v1/tenants/clicks", n)

	m1 := scrape(t, client, ts.URL+"/metrics")

	// The full catalog is registered up front: every required family has at
	// least one parsed sample (unlabeled counters and histogram _count exist
	// even before events).
	for _, fam := range []string{
		"disttrack_engine_feeds_total",
		"disttrack_cluster_processed_total",
		"disttrack_tenant_sent_total",
		"disttrack_wire_msgs_total",
		"disttrack_ingest_accepted_total",
		"disttrack_ingest_batch_records_count",
		"disttrack_shard_queue_depth",
		"disttrack_http_requests_total",
		"disttrack_remote_frames_total",
		"disttrack_uptime_seconds",
		"disttrack_build_info",
		"disttrack_tenants",
	} {
		if sumSeries(m1, fam) == 0 && !hasFamily(m1, fam) {
			t.Errorf("scrape missing family %s", fam)
		}
	}

	// Pipeline counters match the ingest that happened.
	if got := m1["disttrack_ingest_accepted_total"]; got != n {
		t.Errorf("accepted_total = %g, want %d", got, n)
	}
	if got := sumSeries(m1, "disttrack_engine_feeds_total", `tenant="clicks"`); got != n {
		t.Errorf("engine feeds for clicks = %g, want %d", got, n)
	}
	if got := m1[`disttrack_tenants`]; got != 2 {
		t.Errorf("disttrack_tenants = %g, want 2", got)
	}

	// Conservation: the bridge-mirrored wire counters must equal the meter's
	// own totals as served by the stats endpoint. The stream is quiescent
	// (fully processed, no concurrent ingest), so stats before and after the
	// scrape agree and pin the expected value exactly.
	after := waitProcessed(t, client, ts.URL+"/v1/tenants/clicks", n)
	if before.Msgs != after.Msgs || before.Words != after.Words {
		t.Fatalf("meter moved while quiescent: %+v vs %+v", before, after)
	}
	gotMsgs := sumSeries(m1, "disttrack_wire_msgs_total", `owner="clicks"`)
	gotWords := sumSeries(m1, "disttrack_wire_words_total", `owner="clicks"`)
	if int64(gotMsgs) != after.Msgs || int64(gotWords) != after.Words {
		t.Errorf("wire conservation: scrape %g msgs / %g words, stats %d / %d",
			gotMsgs, gotWords, after.Msgs, after.Words)
	}

	// Exercise the query path, then re-scrape: every counter family must be
	// monotone, and the query counters must have moved.
	jsonCall(t, client, "GET", ts.URL+"/v1/tenants/clicks/heavy?phi=0.1", nil, nil)
	jsonCall(t, client, "GET", ts.URL+"/v1/tenants/clicks/heavy?phi=0.1", nil, nil)
	m2 := scrape(t, client, ts.URL+"/metrics")
	for series, v1 := range m1 {
		if !strings.Contains(series, "_total") {
			continue // gauges and histogram sums may legitimately move down
		}
		if v2, ok := m2[series]; ok && v2 < v1 {
			t.Errorf("counter %s went backwards: %g -> %g", series, v1, v2)
		}
	}
	if got := sumSeries(m2, "disttrack_queries_total", `tenant="clicks"`, `query="heavy"`); got != 2 {
		t.Errorf("heavy query counter = %g, want 2", got)
	}
	if m2["disttrack_query_cache_hits_total"]+m2["disttrack_query_cache_misses_total"] < 2 {
		t.Errorf("cache counters did not move: hits %g misses %g",
			m2["disttrack_query_cache_hits_total"], m2["disttrack_query_cache_misses_total"])
	}

	// HTTP middleware labels by mux route, not raw path.
	if got := sumSeries(m2, "disttrack_http_requests_total",
		`route="GET /v1/tenants/{name}/heavy"`, `code="200"`); got != 2 {
		t.Errorf("http route counter = %g, want 2", got)
	}
}

// hasFamily reports whether any parsed series belongs to the family.
func hasFamily(m map[string]float64, family string) bool {
	for series := range m {
		if series == family || strings.HasPrefix(series, family+"{") ||
			strings.HasPrefix(series, family+"_") {
			return true
		}
	}
	return false
}

func TestMetricsTenantDeleteRemovesSeries(t *testing.T) {
	srv := service.New(service.Config{Shards: 1, ShardQueue: 8, SiteBuffer: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	if code := jsonCall(t, client, "POST", ts.URL+"/v1/tenants",
		service.TenantConfig{Name: "ephemeral", Kind: service.KindHH, K: 2, Eps: 0.1}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	jsonCall(t, client, "POST", ts.URL+"/v1/ingest", map[string]any{
		"records": []service.Record{{Tenant: "ephemeral", Site: 0, Value: 1}},
	}, nil)
	jsonCall(t, client, "POST", ts.URL+"/v1/flush", nil, nil)
	waitProcessed(t, client, ts.URL+"/v1/tenants/ephemeral", 1)
	m1 := scrape(t, client, ts.URL+"/metrics")
	if sumSeries(m1, "disttrack_engine_feeds_total", `tenant="ephemeral"`) != 1 {
		t.Fatalf("tenant series missing before delete:\n%v", m1)
	}

	if code := jsonCall(t, client, "DELETE", ts.URL+"/v1/tenants/ephemeral", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	m2 := scrape(t, client, ts.URL+"/metrics")
	for series := range m2 {
		if strings.Contains(series, `tenant="ephemeral"`) || strings.Contains(series, `owner="ephemeral"`) {
			t.Errorf("deleted tenant still exported: %s", series)
		}
	}
}

func TestQueryErrorStatusMapping(t *testing.T) {
	srv := service.New(service.Config{Shards: 1, ShardQueue: 8, SiteBuffer: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	for _, tc := range []service.TenantConfig{
		{Name: "hh", Kind: service.KindHH, K: 2, Eps: 0.1},
		{Name: "quant", Kind: service.KindQuantile, K: 2, Eps: 0.1, Phis: []float64{0.5}},
		{Name: "allq", Kind: service.KindAllQ, K: 2, Eps: 0.1},
	} {
		if code := jsonCall(t, client, "POST", ts.URL+"/v1/tenants", tc, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", tc.Name, code)
		}
	}

	cases := []struct {
		name string
		url  string
		want int
	}{
		{"heavy on quantile kind", "/v1/tenants/quant/heavy?phi=0.1", http.StatusUnprocessableEntity},
		{"quantile on hh kind", "/v1/tenants/hh/quantile?phi=0.5", http.StatusUnprocessableEntity},
		{"rank on hh kind", "/v1/tenants/hh/rank?value=1", http.StatusUnprocessableEntity},
		{"freq on quantile kind", "/v1/tenants/quant/freq?item=1", http.StatusUnprocessableEntity},
		// Capability beats argument validation: a bad phi on the wrong kind is
		// still 422, exactly as the old per-kind switches answered.
		{"bad phi on wrong kind", "/v1/tenants/hh/quantile?phi=7", http.StatusUnprocessableEntity},
		{"no data", "/v1/tenants/allq/quantile?phi=0.5", http.StatusConflict},
		{"bad phi on right kind", "/v1/tenants/allq/quantile?phi=7", http.StatusBadRequest},
		{"missing phi", "/v1/tenants/hh/heavy", http.StatusBadRequest},
		{"unknown tenant", "/v1/tenants/nope/heavy?phi=0.1", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body struct {
				Code string `json:"code"`
			}
			if code := jsonCall(t, client, "GET", ts.URL+tc.url, nil, &body); code != tc.want {
				t.Fatalf("GET %s: status %d (code %q), want %d", tc.url, code, body.Code, tc.want)
			}
		})
	}
}

func TestHealthzEnriched(t *testing.T) {
	srv := service.New(service.Config{Shards: 3, ShardQueue: 8, SiteBuffer: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	if code := jsonCall(t, client, "POST", ts.URL+"/v1/tenants",
		service.TenantConfig{Name: "t", Kind: service.KindHH, K: 2, Eps: 0.1}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var hz struct {
		OK         bool    `json:"ok"`
		Tenants    int     `json:"tenants"`
		Uptime     float64 `json:"uptime_seconds"`
		Version    string  `json:"version"`
		Go         string  `json:"go"`
		Shards     int     `json:"shards"`
		QueueDepth []int   `json:"shard_queue_depth"`
	}
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		if code := jsonCall(t, client, "GET", ts.URL+path, nil, &hz); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, code)
		}
		if !hz.OK || hz.Tenants != 1 || hz.Shards != 3 || len(hz.QueueDepth) != 3 {
			t.Fatalf("GET %s: %+v", path, hz)
		}
		if hz.Uptime <= 0 || hz.Version == "" || hz.Go == "" {
			t.Fatalf("GET %s missing build/uptime metadata: %+v", path, hz)
		}
	}
}

// TestMetricsFeedWhileScraping hammers ingest from several goroutines while
// continuously scraping /metrics; run under -race this exercises every
// update discipline (inline atomics, direct observes, scrape-hook mirrors)
// against concurrent exposition.
func TestMetricsFeedWhileScraping(t *testing.T) {
	srv := service.New(service.Config{Shards: 2, ShardQueue: 16, SiteBuffer: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	for _, tc := range []service.TenantConfig{
		{Name: "a", Kind: service.KindHH, K: 2, Eps: 0.1},
		{Name: "b", Kind: service.KindAllQ, K: 2, Eps: 0.1},
	} {
		if code := jsonCall(t, client, "POST", ts.URL+"/v1/tenants", tc, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", tc.Name, code)
		}
	}

	const (
		feeders = 3
		rounds  = 20
		batch   = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				recs := make([]service.Record, 0, batch)
				for i := 0; i < batch; i++ {
					name := "a"
					if i%2 == 0 {
						name = "b"
					}
					recs = append(recs, service.Record{
						Tenant: name, Site: i % 2, Value: uint64(g*1000 + r*batch + i),
					})
				}
				if code := jsonCall(t, client, "POST", ts.URL+"/v1/ingest",
					map[string]any{"records": recs}, nil); code != http.StatusOK {
					t.Errorf("ingest: status %d", code)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	scrapes := 0
	for {
		select {
		case <-done:
			if scrapes == 0 {
				t.Fatal("no scrape overlapped the feed")
			}
			// Final consistency after the dust settles.
			jsonCall(t, client, "POST", ts.URL+"/v1/flush", nil, nil)
			total := int64(feeders * rounds * batch)
			waitProcessed(t, client, ts.URL+"/v1/tenants/a", total/2)
			waitProcessed(t, client, ts.URL+"/v1/tenants/b", total/2)
			m := scrape(t, client, ts.URL+"/metrics")
			if got := m["disttrack_ingest_accepted_total"]; int64(got) != total {
				t.Fatalf("accepted_total = %g, want %d", got, total)
			}
			feeds := sumSeries(m, "disttrack_engine_feeds_total", `tenant="a"`) +
				sumSeries(m, "disttrack_engine_feeds_total", `tenant="b"`)
			if int64(feeds) != total {
				t.Fatalf("engine feeds = %g, want %d", feeds, total)
			}
			return
		default:
			resp, err := client.Get(ts.URL + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("scrape status %d", resp.StatusCode)
			}
			scrapes++
		}
	}
}
