package service

import (
	"net/http"
	"sync/atomic"

	"disttrack/internal/obs"
)

// Server ties the registry, the sharded ingest pipeline, the metrics plane
// and the HTTP API together. Create one with New, mount Handler on any
// http.Server (or use cmd/trackd), and Close it for a graceful drain.
type Server struct {
	cfg     Config
	reg     *Registry
	sh      *sharder
	met     *serverMetrics
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the HTTP instrumentation
	closing atomic.Bool
	remote  atomic.Pointer[RemoteIngest] // set by ServeRemote
}

// New builds a Server from cfg (zero values take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	s.met = newServerMetrics(cfg.Shards)
	s.reg = NewRegistry(cfg.SiteBuffer)
	s.reg.met = s.met
	s.sh = newSharder(s.reg, cfg.Shards, cfg.ShardQueue, s.met)
	s.mux = newMux(s)
	s.handler = s.met.instrumentHTTP(s.mux)
	s.met.reg.OnScrape(s.syncObs)
	s.met.reg.NewGaugeFunc("disttrack_tenants",
		"Live tenants in the registry.",
		func() float64 { return float64(s.reg.Count()) })
	return s
}

// Handler returns the HTTP API handler (instrumented; see GET /metrics).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes tenant lifecycle for embedding and tests.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's obs registry — the one exposed at
// GET /metrics — so embedders can add their own instrumentation to it.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Ingest feeds records through the pipeline without HTTP (embedded use).
// Rejections with Code == "rate_limited" were throttled by the tenant's QoS
// admission and are retryable; other rejections are permanent.
func (s *Server) Ingest(recs []Record) (int, []RecordError) {
	accepted, errs, _ := s.sh.Ingest(recs)
	return accepted, errs
}

// Flush blocks until everything accepted so far is visible to queries.
func (s *Server) Flush() { s.sh.Flush() }

// Close drains the service: new ingest/create requests are refused, shard
// queues are flushed into the clusters, and every tenant's cluster drains
// its remaining arrivals. Queries keep working until the caller stops the
// HTTP listener; Close is idempotent only in that second calls panic-free
// no-op via the registry being empty, so call it once after the listener
// has shut down.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	// Stop the networked ingest first so no site-node frame races the
	// pipeline teardown; site nodes keep unacknowledged frames buffered
	// and resync against whatever replaces this server.
	if ri := s.remote.Load(); ri != nil {
		ri.Close()
	}
	s.sh.Close()
	s.reg.Close()
}
