package service

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"disttrack/internal/durable"
	"disttrack/internal/obs"
)

// Server ties the registry, the sharded ingest pipeline, the metrics plane
// and the HTTP API together. Create one with New (or Open for the durable
// plane), mount Handler on any http.Server (or use cmd/trackd), and Close
// it for a graceful drain.
type Server struct {
	cfg     Config
	reg     *Registry
	sh      *sharder
	met     *serverMetrics
	dur     *durability // nil without Config.DataDir
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the HTTP instrumentation
	closing atomic.Bool
	remote  atomic.Pointer[RemoteIngest] // set by ServeRemote

	// Membership plane (membership.go): epoch is the coordinator's current
	// membership configuration epoch (≥ 1; recovered from the durable cursor
	// table, advertised to site nodes, bumped on every site add/remove or
	// tenant migration). memberMu serializes membership operations — they
	// are rare, multi-step, and must not interleave.
	epoch      atomic.Uint64
	memberMu   sync.Mutex
	memChanges atomic.Int64 // completed membership reconfigurations
	migrations atomic.Int64 // completed tenant migrations
}

// New builds a Server from cfg (zero values take defaults) with durability
// disabled; it ignores Config.DataDir. Use Open when the durable plane is
// wanted — recovery from an existing data directory can fail, which is why
// Open returns an error and New does not.
func New(cfg Config) *Server {
	cfg.DataDir = ""
	s, err := Open(cfg)
	if err != nil {
		// Unreachable: every error path in Open is durability setup.
		panic(err)
	}
	return s
}

// Open builds a Server from cfg and, when cfg.DataDir is set, opens the
// durable plane: it recovers every persisted tenant (newest valid
// checkpoint, then WAL tail replay through the normal ingest path) before
// returning, and starts the periodic checkpoint loop. A corrupt checkpoint
// is quarantined and the previous one used; a torn final WAL record is
// truncated away. Open fails only on durability problems recovery cannot
// route around (unreadable directory, invalid tenant config, mid-log
// corruption).
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}
	s.met = newServerMetrics(cfg.Shards)
	s.reg = NewRegistry(cfg.SiteBuffer)
	s.reg.met = s.met
	s.sh = newSharder(s.reg, cfg.Shards, cfg.ShardQueue, s.met)
	s.mux = newMux(s)
	s.handler = s.met.instrumentHTTP(s.mux)
	s.met.reg.OnScrape(s.syncObs)
	s.met.reg.NewGaugeFunc("disttrack_tenants",
		"Live tenants in the registry.",
		func() float64 { return float64(s.reg.Count()) })
	s.met.reg.NewGaugeFunc("disttrack_membership_epoch",
		"Current membership configuration epoch (bumped on every site add/remove and tenant migration).",
		func() float64 { return float64(s.epoch.Load()) })
	s.epoch.Store(1)
	if cfg.DataDir != "" {
		store, err := durable.Open(cfg.DataDir, durable.Options{
			Fsync:         cfg.Fsync,
			FsyncInterval: cfg.FsyncInterval,
		})
		if err != nil {
			return nil, err
		}
		s.dur = newDurability(store, cfg.CheckpointInterval)
		s.reg.dur = s.dur
		// Load the persisted coordinator cursor table BEFORE tenant recovery:
		// the WAL replay below merges each record's provenance into the same
		// table, so after recovery it holds max(file, WAL tail) per node — the
		// exactly-once dedup floor for the ingest listener. A corrupt table is
		// fatal (silently starting without it risks double counting).
		ct, found, err := store.LoadCursors()
		if err != nil {
			s.reg.Close()
			return nil, fmt.Errorf("service: recovery: %w", err)
		}
		if found {
			s.dur.cursors = ct.Nodes
			s.dur.cursorsFound = true
			if ct.Epoch > 1 {
				s.epoch.Store(ct.Epoch)
			}
		}
		if err := s.recoverTenants(); err != nil {
			s.reg.Close()
			return nil, fmt.Errorf("service: recovery: %w", err)
		}
		s.met.reg.NewGaugeFunc("disttrack_last_checkpoint_age_seconds",
			"Seconds since the durable plane last completed a checkpoint (or since boot).",
			s.dur.checkpointAge)
		go s.checkpointLoop()
	}
	return s, nil
}

// Handler returns the HTTP API handler (instrumented; see GET /metrics).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes tenant lifecycle for embedding and tests.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the server's obs registry — the one exposed at
// GET /metrics — so embedders can add their own instrumentation to it.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// Ingest feeds records through the pipeline without HTTP (embedded use).
// Rejections with Code == "rate_limited" were throttled by the tenant's QoS
// admission and are retryable; other rejections are permanent.
func (s *Server) Ingest(recs []Record) (int, []RecordError) {
	accepted, errs, _ := s.sh.Ingest(recs)
	return accepted, errs
}

// Flush blocks until everything accepted so far is visible to queries.
func (s *Server) Flush() { s.sh.Flush() }

// Close drains the service: new ingest/create requests are refused, shard
// queues are flushed into the clusters, and every tenant's cluster drains
// its remaining arrivals. With the durable plane open, Close then takes a
// final checkpoint of every tenant — a graceful restart recovers from the
// checkpoint alone, with zero WAL replay. Queries keep working until the
// caller stops the HTTP listener; Close is idempotent only in that second
// calls panic-free no-op via the registry being empty, so call it once
// after the listener has shut down.
func (s *Server) Close() {
	if s.closing.Swap(true) {
		return
	}
	// Stop the networked ingest first so no site-node frame races the
	// pipeline teardown; site nodes keep unacknowledged frames buffered
	// and resync against whatever replaces this server.
	if ri := s.remote.Load(); ri != nil {
		ri.Close()
	}
	s.sh.Close()
	if d := s.dur; d != nil {
		d.stopLoop()
		// The pipeline is closed, so nothing new reaches the clusters: the
		// final checkpoints cover everything ever accepted.
		for _, t := range s.reg.all() {
			if err := s.checkpointTenant(t); err != nil {
				s.met.ckptErrors.Inc()
			}
			if t.dur != nil {
				t.dur.Close()
			}
		}
		// Persist the final cursor table (the ingest server's lastSeq map
		// outlives its Close, and the drained pipeline means every applied
		// record is already in a checkpoint or the WAL): a graceful restart
		// recovers the dedup floor without any WAL provenance scan.
		if err := s.saveCursors(); err != nil {
			s.met.ckptErrors.Inc()
		}
	}
	s.reg.Close()
}
