package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"maps"
	"slices"
	"sync"
	"time"

	"disttrack/internal/ckpt"
	"disttrack/internal/durable"
	"disttrack/internal/runtime"
	"disttrack/internal/stream"
)

// durability is the server's durable plane: the store handle, the
// checkpoint loop lifecycle, and the recovery bookkeeping surfaced at
// /healthz. It exists only when Config.DataDir is set; every ingest-path
// hook is a nil check against it (or the per-tenant handle), so a server
// without durability pays nothing.
//
// The consistency contract between the WAL and a checkpoint: each
// {perturb, WAL append, cluster send} step runs under the tenant's durMu,
// and the checkpointer captures state under the same mutex after waiting
// for the cluster to absorb everything sent. At capture time, then, the
// tracker state (plus the perturbation counters) reflects exactly the WAL
// prefix up to the cover sequence — recovery restores the checkpoint and
// replays strictly newer records, giving exactly-once application of every
// acknowledged record that reached the WAL.
type durability struct {
	store    *durable.Store
	interval time.Duration

	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	lastCkpt    time.Time // last completed checkpoint (boot time until then)
	recovered   int       // tenants restored at boot
	replayed    int64     // WAL records replayed at boot
	quarantined int       // checkpoints quarantined at boot
	tornTails   int       // WAL segments repaired by torn-tail truncation

	// cursors is the coordinator's per-node ingest dedup table as recovered
	// at boot: the persisted cursor file merged with the max provenance seen
	// per node across every tenant's on-disk WAL (the file may lag the WAL by
	// up to one checkpoint cycle; the WAL never lags the file, because
	// cursors are only saved after a pipeline flush barrier). It seeds the
	// ingest server's lastSeq table so a node replaying a tail the previous
	// incarnation applied is deduplicated exactly. cursorsFound records
	// whether the cursor file existed (false on a pre-cursor data dir: boot
	// warns and dedup falls back to the WAL-derived maxima alone).
	cursors      map[string]uint64
	cursorsFound bool
}

func newDurability(store *durable.Store, interval time.Duration) *durability {
	return &durability{
		store:    store,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		lastCkpt: time.Now(),
	}
}

// checkpointAge reports seconds since the last completed checkpoint (or
// since boot), for the disttrack_last_checkpoint_age_seconds gauge.
func (d *durability) checkpointAge() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Since(d.lastCkpt).Seconds()
}

func (d *durability) noteCheckpoint() {
	d.mu.Lock()
	d.lastCkpt = time.Now()
	d.mu.Unlock()
}

// stopLoop stops the periodic checkpoint loop and waits for it to exit.
func (d *durability) stopLoop() {
	close(d.stop)
	<-d.done
}

// setupTenant creates the durable state for a freshly created tenant:
// directory, persisted config (so a crash before the first checkpoint
// still recovers the tenant), and an open WAL. Runs before the tenant is
// published in the registry, so the ingest path never sees a half-set-up
// handle.
func (d *durability) setupTenant(t *Tenant) error {
	ten, err := d.store.Tenant(t.cfg.Name)
	if err != nil {
		return err
	}
	meta, err := json.Marshal(t.cfg)
	if err != nil {
		return err
	}
	if err := ten.Create(meta); err != nil {
		return err
	}
	if err := ten.OpenWAL(1); err != nil {
		return err
	}
	t.dur = ten
	return nil
}

// RecoveryStats reports what boot recovery did, for operator-facing boot
// logs (cmd/trackd). The zero value means durability is disabled or the
// data directory was empty.
type RecoveryStats struct {
	RecoveredTenants       int   // tenants restored from disk
	ReplayedRecords        int64 // WAL record batches replayed
	QuarantinedCheckpoints int   // checkpoints renamed *.corrupt and skipped
	TornTails              int   // WAL segments repaired by torn-tail truncation
	CursorNodes            int   // per-node dedup cursors recovered (file + WAL provenance)
	DurableCursors         bool  // the persisted cursor table was found and loaded
}

// RecoveryStats returns what boot recovery did (zero without durability).
func (s *Server) RecoveryStats() RecoveryStats {
	d := s.dur
	if d == nil {
		return RecoveryStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return RecoveryStats{
		RecoveredTenants:       d.recovered,
		ReplayedRecords:        d.replayed,
		QuarantinedCheckpoints: d.quarantined,
		TornTails:              d.tornTails,
		CursorNodes:            len(d.cursors),
		DurableCursors:         d.cursorsFound,
	}
}

// mergeCursor folds one WAL record's provenance into the boot cursor table
// (recovery takes the max of the persisted file and the WAL tail per node).
func (d *durability) mergeCursor(node string, seq uint64) {
	d.mu.Lock()
	if d.cursors == nil {
		d.cursors = make(map[string]uint64)
	}
	if seq > d.cursors[node] {
		d.cursors[node] = seq
	}
	d.mu.Unlock()
}

// cursorSnapshot copies the boot-recovered cursor table.
func (d *durability) cursorSnapshot() map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]uint64, len(d.cursors))
	for n, seq := range d.cursors {
		out[n] = seq
	}
	return out
}

// DurabilityStatus is the /healthz durability section.
type DurabilityStatus struct {
	LastCheckpointAgeS float64 `json:"last_checkpoint_age_s"`
	WALSegments        int64   `json:"wal_segments"`
	RecoveredTenants   int     `json:"recovered_tenants"`
}

// durabilityStatus snapshots the durable plane for /healthz (nil when
// durability is disabled).
func (s *Server) durabilityStatus() *DurabilityStatus {
	d := s.dur
	if d == nil {
		return nil
	}
	var segs int64
	for _, t := range s.reg.all() {
		if t.dur != nil {
			segs += t.dur.WALStats().Segments
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return &DurabilityStatus{
		LastCheckpointAgeS: time.Since(d.lastCkpt).Seconds(),
		WALSegments:        segs,
		RecoveredTenants:   d.recovered,
	}
}

// recoverTenants rebuilds every persisted tenant at boot: config from
// meta.json, state from the newest valid checkpoint, then the WAL tail
// replayed through the normal cluster path. It runs before the server
// serves anything, so queries never observe a half-recovered tenant.
func (s *Server) recoverTenants() error {
	names, err := s.dur.store.ListTenants()
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := s.recoverTenant(name); err != nil {
			return fmt.Errorf("tenant %s: %w", name, err)
		}
	}
	return nil
}

func (s *Server) recoverTenant(name string) error {
	ten, err := s.dur.store.Tenant(name)
	if err != nil {
		return err
	}
	meta, err := ten.Meta()
	if err != nil {
		return err
	}
	var tc TenantConfig
	if err := json.Unmarshal(meta, &tc); err != nil {
		return fmt.Errorf("bad meta.json: %w", err)
	}
	if tc.Name != name {
		return fmt.Errorf("meta.json names tenant %q", tc.Name)
	}
	if err := tc.validate(); err != nil {
		return fmt.Errorf("bad meta.json: %w", err)
	}

	// Load the newest checkpoint whose frame AND payload decode cleanly.
	// Frame-level corruption is quarantined inside LoadCheckpoint; a frame
	// that verifies but fails the payload decode (truncated write that
	// still checksums, version skew) is quarantined here, and the tracker
	// rebuilt from scratch for the next candidate — a failed Restore
	// leaves a tracker unusable by contract.
	var t *Tenant
	var cover uint64
	for {
		ck, quarantined, err := ten.LoadCheckpoint()
		if err != nil {
			return err
		}
		s.dur.quarantined += quarantined
		t, err = newTenant(tc, s.cfg.SiteBuffer, s.met)
		if err != nil {
			return err
		}
		if ck == nil {
			break
		}
		if rerr := t.restoreDurable(ck.Payload); rerr != nil {
			t.close(false)
			if err := ten.Quarantine(ck.CoverSeq); err != nil {
				return err
			}
			s.dur.quarantined++
			continue
		}
		cover = ck.CoverSeq
		break
	}

	// Replay the ENTIRE on-disk WAL, not just the tail past the cover:
	// records at or before the cover are already inside the checkpoint and
	// are not re-applied, but their per-node provenance still feeds the
	// cursor table. The persisted cursor file is only guaranteed to cover
	// records up to the OLDEST retained checkpoint cover (cursors are saved
	// once per cycle, after the checkpoints that truncate to that older
	// cover), so the provenance of everything newer must be re-derived here
	// — otherwise a node replaying that window after a crash would be
	// double-applied.
	var applied int64
	stats, err := ten.ReplayWAL(0, func(seq uint64, site int, keys []uint64, node string, nodeSeq uint64) error {
		if node != "" {
			s.dur.mergeCursor(node, nodeSeq)
		}
		if seq <= cover {
			return nil // inside the checkpoint: provenance only
		}
		applied++
		return t.replayBatch(site, keys)
	})
	if err != nil {
		t.close(false)
		return err
	}
	// Wait for the cluster to absorb the replay so the tenant answers
	// queries consistently the moment recovery returns.
	for !t.synced() {
		time.Sleep(100 * time.Microsecond)
	}
	next := cover + 1
	if stats.LastSeq >= next {
		next = stats.LastSeq + 1
	}
	if err := ten.OpenWAL(next); err != nil {
		t.close(false)
		return err
	}
	t.dur = ten
	if err := s.reg.insert(t); err != nil {
		t.close(false)
		ten.Close()
		return err
	}
	s.dur.mu.Lock()
	s.dur.recovered++
	s.dur.replayed += applied
	if stats.TornTail {
		s.dur.tornTails++
	}
	s.dur.mu.Unlock()
	s.met.walReplayed.Add(applied)
	return nil
}

// replayBatch re-feeds keys recovered from the WAL through the normal
// cluster path, bypassing admission, perturbation and the WAL itself (the
// keys are already perturbed, already admitted, already logged). It also
// advances the perturbation counters past every replayed key, so new
// ingest after recovery continues the sequence instead of reusing keys.
// A site past the live count (a WAL written before a membership shrink)
// folds onto site 0, matching the engine's Reconfigure fold.
func (t *Tenant) replayBatch(site int, keys []uint64) error {
	if site >= t.K() {
		site = 0
	}
	if t.seq != nil {
		for _, k := range keys {
			v := k >> stream.PerturbBits
			low := uint32(k & (1<<stream.PerturbBits - 1))
			if t.seq[v] <= low {
				t.seq[v] = low + 1
			}
		}
	}
	b := append(runtime.GetBatch(len(keys)), keys...)
	return t.sendBatch(site, b)
}

// encodeDurable captures the tenant's durable payload: name (sanity), the
// perturbation counters, and the tracker's engine checkpoint. The caller
// must hold durMu with the cluster synced, so the capture matches the WAL
// cover exactly.
func (t *Tenant) encodeDurable() ([]byte, error) {
	var enc ckpt.Encoder
	enc.String(t.cfg.Name)
	if t.seq == nil {
		enc.Bool(false)
	} else {
		enc.Bool(true)
		enc.U32(uint32(len(t.seq)))
		for _, v := range slices.Sorted(maps.Keys(t.seq)) {
			enc.U64(v)
			enc.U32(t.seq[v])
		}
	}
	var buf bytes.Buffer
	if err := t.tr.Checkpoint(&buf); err != nil {
		return nil, err
	}
	enc.Blob(buf.Bytes())
	return append([]byte(nil), enc.Bytes()...), nil
}

// restoreDurable rebuilds the tenant from a checkpoint payload. The tenant
// must be freshly constructed; on error it must be discarded (the tracker
// may be half-restored).
func (t *Tenant) restoreDurable(payload []byte) error {
	dec := ckpt.NewDecoder(payload)
	name := dec.String()
	if dec.Err() == nil && name != t.cfg.Name {
		return fmt.Errorf("checkpoint for tenant %q, want %q", name, t.cfg.Name)
	}
	hasSeq := dec.Bool()
	if dec.Err() == nil && hasSeq != t.perturbed() {
		return fmt.Errorf("checkpoint perturbation state does not match tenant kind %q", t.cfg.Kind)
	}
	if hasSeq {
		n := dec.Count(12) // 8-byte value + 4-byte counter per entry
		if err := dec.Err(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v := dec.U64()
			q := dec.U32()
			if err := dec.Err(); err != nil {
				return err
			}
			t.seq[v] = q
		}
	}
	blob := dec.Blob()
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Remaining() != 0 {
		return fmt.Errorf("checkpoint payload has %d trailing bytes", dec.Remaining())
	}
	return t.tr.Restore(bytes.NewReader(blob))
}

// checkpointTenant writes one durable checkpoint for t: block the tenant's
// WAL appends (durMu), note the cover sequence, wait for the cluster to
// absorb everything sent, capture under the engine's quiescent lock set,
// then write, prune and truncate outside the mutex. No-op for closed
// tenants and for tenants without a durable handle.
func (s *Server) checkpointTenant(t *Tenant) error {
	d := t.dur
	if d == nil || t.isClosed() {
		return nil
	}
	t0 := time.Now()
	t.durMu.Lock()
	cover := d.NextSeq() - 1
	for !t.synced() {
		if t.isClosed() {
			t.durMu.Unlock()
			return nil
		}
		time.Sleep(100 * time.Microsecond)
	}
	payload, err := t.encodeDurable()
	t.durMu.Unlock()
	if err != nil {
		return err
	}
	size, _, err := d.WriteCheckpoint(cover, payload)
	if err != nil {
		return err
	}
	s.met.ckptTotal.Inc()
	s.met.ckptBytes.Add(size)
	s.met.ckptSecs.Observe(time.Since(t0).Seconds())
	s.dur.noteCheckpoint()
	return nil
}

// checkpointCycle runs one full durable cycle: checkpoint every live
// tenant, then persist the coordinator cursor table. The order matters for
// exactly-once recovery: a checkpoint's WAL truncation goes to the OLDER of
// the two retained covers, and the cursor file written at the end of cycle
// n covers everything up to cycle n's cover — which becomes the older
// retained cover after cycle n+1. So at every crash point, per-node
// provenance is recoverable from max(cursor file, full on-disk WAL scan).
func (s *Server) checkpointCycle() {
	for _, t := range s.reg.all() {
		if err := s.checkpointTenant(t); err != nil {
			s.met.ckptErrors.Inc()
		}
	}
	if err := s.saveCursors(); err != nil {
		s.met.ckptErrors.Inc()
	}
}

// saveCursors persists the coordinator cursor table at an applied == durable
// safe point. The snapshot is taken FIRST, then the pipeline flush barrier
// runs: cursors advance when a frame is accepted into the shard queue
// (before its WAL append on the worker), so the barrier is what guarantees
// every record the snapshot claims applied has reached the WAL. Snapshot
// after flush would leave a window where a cursor covers an un-logged
// record — a silent drop on recovery.
func (s *Server) saveCursors() error {
	if s.dur == nil {
		return nil
	}
	var nodes map[string]uint64
	if ri := s.remote.Load(); ri != nil {
		nodes = ri.srv.Cursors()
	} else {
		// No remote listener (yet): persist the boot-recovered table so a
		// pure-HTTP restart still carries epoch and cursor state forward.
		nodes = s.dur.cursorSnapshot()
	}
	s.sh.Flush()
	return s.dur.store.SaveCursors(durable.CursorTable{
		Epoch: s.epoch.Load(),
		Nodes: nodes,
	})
}

// checkpointLoop runs the durable cycle on the configured cadence until
// Close stops it.
func (s *Server) checkpointLoop() {
	defer close(s.dur.done)
	tick := time.NewTicker(s.dur.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.dur.stop:
			return
		case <-tick.C:
			s.checkpointCycle()
		}
	}
}
