// Conditional-GET tests for the query endpoints: every 200 carries a
// version ETag, a matching If-None-Match short-circuits to 304 (counted in
// disttrack_query_cache_etag_hits_total), ingest invalidates, and a
// delete/recreate cycle never resurrects an old validator.
package service_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"

	"disttrack/internal/service"
)

// getWithETag issues a GET with an optional If-None-Match header and
// returns the status, the response ETag, and the body.
func getWithETag(t *testing.T, client *http.Client, url, inm string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), string(body)
}

// etagHits scrapes /metrics for the conditional-hit counter.
func etagHits(t *testing.T, client *http.Client, base string) int {
	t.Helper()
	_, _, body := getWithETag(t, client, base+"/metrics", "")
	m := regexp.MustCompile(`(?m)^disttrack_query_cache_etag_hits_total (\d+)$`).FindStringSubmatch(body)
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQueryETag(t *testing.T) {
	srv := service.New(service.Config{Shards: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := ts.Client()

	create := func() {
		code := jsonCall(t, client, "POST", ts.URL+"/v1/tenants",
			service.TenantConfig{Name: "et", Kind: service.KindAllQ, K: 2, Eps: 0.1}, nil)
		if code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
	}
	ingest := func(vals ...uint64) {
		var recs []service.Record
		for i, v := range vals {
			recs = append(recs, service.Record{Tenant: "et", Site: i % 2, Value: v})
		}
		if code := jsonCall(t, client, "POST", ts.URL+"/v1/ingest",
			map[string]any{"records": recs}, nil); code != http.StatusOK {
			t.Fatalf("ingest: status %d", code)
		}
		if code := jsonCall(t, client, "POST", ts.URL+"/v1/flush", struct{}{}, nil); code != http.StatusOK {
			t.Fatalf("flush: status %d", code)
		}
	}
	create()
	ingest(5, 9, 2, 7, 4, 1, 8, 3)

	rankURL := ts.URL + "/v1/tenants/et/rank?value=5"
	code, etag, body := getWithETag(t, client, rankURL, "")
	if code != http.StatusOK || etag == "" {
		t.Fatalf("rank: status %d etag %q body %s", code, etag, body)
	}

	// A fresh validator short-circuits to 304 with no body, bumps the hit
	// counter, and echoes the ETag. List syntax and weak-prefix tolerance
	// ride the same check.
	before := etagHits(t, client, ts.URL)
	for _, inm := range []string{etag, `"zzz", ` + etag, "W/" + etag, "*"} {
		code, got, body := getWithETag(t, client, rankURL, inm)
		if code != http.StatusNotModified || got != etag || body != "" {
			t.Fatalf("If-None-Match %q: status %d etag %q body %q", inm, code, got, body)
		}
	}
	if hits := etagHits(t, client, ts.URL); hits != before+4 {
		t.Fatalf("etag hits: %d, want %d", hits, before+4)
	}

	// The same validator works across endpoints — it names coordinator
	// state, not one resource — and a stale one misses.
	if code, _, _ := getWithETag(t, client, ts.URL+"/v1/tenants/et/quantile?phi=0.5", etag); code != http.StatusNotModified {
		t.Fatalf("quantile with current validator: status %d, want 304", code)
	}
	if code, _, _ := getWithETag(t, client, rankURL, `"t0-v0"`); code != http.StatusOK {
		t.Fatalf("stale validator: status %d, want 200", code)
	}

	// Ingest enough to force an escalation (version bump): the old
	// validator must miss and the replacement must differ.
	ingest(11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26)
	code, etag2, _ := getWithETag(t, client, rankURL, etag)
	if code != http.StatusOK {
		t.Fatalf("after ingest: status %d, want 200", code)
	}
	if etag2 == "" || etag2 == etag {
		t.Fatalf("after ingest: etag %q did not change from %q", etag2, etag)
	}

	// Delete and recreate: the generation nonce keeps validators disjoint
	// even though the fresh tenant restarts at version 0-ish.
	if code := jsonCall(t, client, "DELETE", ts.URL+"/v1/tenants/et", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	create()
	ingest(5, 9, 2, 7, 4, 1, 8, 3)
	code, etag3, _ := getWithETag(t, client, rankURL, etag2)
	if code != http.StatusOK {
		t.Fatalf("recreated tenant with old validator: status %d, want 200", code)
	}
	if etag3 == etag || etag3 == etag2 {
		t.Fatalf("recreated tenant reused validator %q", etag3)
	}
}
