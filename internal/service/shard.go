package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"disttrack/internal/runtime"
)

// recordBatchPool recycles the []Record partitions that carry validated
// batches from Ingest to the shard workers: Ingest allocates from it, the
// worker returns the slice once delivered, so steady-state HTTP ingest
// does not allocate a partition per request per shard.
var recordBatchPool = sync.Pool{
	New: func() any {
		s := make([]Record, 0, 64)
		return &s
	},
}

func getRecordBatch() []Record {
	return (*recordBatchPool.Get().(*[]Record))[:0]
}

func putRecordBatch(recs []Record) {
	if cap(recs) == 0 {
		return
	}
	recs = recs[:0]
	recordBatchPool.Put(&recs)
}

// errShuttingDown marks rejections caused by pipeline teardown rather than
// bad input; the networked ingest path translates it into a connection drop
// (sender retries) instead of a frame reject (sender discards).
var errShuttingDown = errors.New("service shutting down")

// Record is one ingested arrival: a value observed at one site of one
// tenant's distributed stream.
type Record struct {
	Tenant string `json:"tenant"`
	Site   int    `json:"site"`
	Value  uint64 `json:"value"`
}

// RecordError reports one rejected record by its index in the submitted
// batch. Code distinguishes throttles (codeThrottled — retry later) from
// validation failures (empty — retrying is pointless).
type RecordError struct {
	Index int    `json:"index"`
	Err   string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// sharder is the ingest pipeline: it validates record batches, hashes each
// tenant onto one worker shard, and the shard feeds grouped sub-batches to
// the tenants' clusters. A tenant's records always land on the same shard,
// preserving per-tenant arrival order and making per-tenant ingest state
// single-writer.
type sharder struct {
	reg    *Registry
	met    *serverMetrics // nil when uninstrumented (direct construction in tests)
	shards []*shard

	// assigned pins tenants to explicit shards (tenant migration overrides
	// the hash so a migrated tenant's records land on its new worker).
	// hasAssign keeps the hot path lock-free while the map is empty — the
	// overwhelmingly common case.
	assignMu  sync.RWMutex
	assigned  map[string]int
	hasAssign atomic.Bool

	accepted  atomic.Int64
	rejected  atomic.Int64
	throttled atomic.Int64 // denied by per-tenant QoS admission
	lost      atomic.Int64 // accepted but undeliverable (tenant deleted mid-flight)

	// mu serializes Ingest/Flush (read side) against Close (write side):
	// closing a shard channel while a handler is sending on it would panic,
	// and HTTP handlers can outlive the server's closing flag check.
	mu     sync.RWMutex
	closed bool
}

type shard struct {
	ch chan shardMsg
	wg *sync.WaitGroup
}

// shardMsg carries a record batch, a pre-grouped remote batch, or a flush
// barrier.
type shardMsg struct {
	recs    []Record
	group   *remoteGroup
	barrier chan<- struct{}
}

// remoteGroup is one already-grouped (tenant, site) value batch from the
// networked ingest path: a site node groups records before framing them, so
// the coordinator can skip the per-record partitioning the HTTP path pays.
// node/nodeSeq carry the frame's provenance into the WAL, so recovery can
// re-derive the coordinator's per-node dedup cursors from the replay tail.
type remoteGroup struct {
	tenant  string
	site    int
	values  []uint64
	node    string
	nodeSeq uint64
}

func newSharder(reg *Registry, n, queue int, met *serverMetrics) *sharder {
	sh := &sharder{reg: reg, met: met}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		s := &shard{ch: make(chan shardMsg, queue), wg: &wg}
		sh.shards = append(sh.shards, s)
		wg.Add(1)
		go sh.worker(s)
	}
	return sh
}

// shardOf hashes a tenant name onto its owning shard (inlined FNV-1a — the
// hash/fnv hasher would allocate once per record on the hot ingest path).
// An explicit assignment (tenant migration) overrides the hash.
func (sh *sharder) shardOf(tenant string) *shard {
	if sh.hasAssign.Load() {
		sh.assignMu.RLock()
		idx, ok := sh.assigned[tenant]
		sh.assignMu.RUnlock()
		if ok {
			return sh.shards[idx]
		}
	}
	return sh.shards[sh.hashShard(tenant)]
}

// hashShard is the default tenant → shard-index hash.
func (sh *sharder) hashShard(tenant string) int {
	h := uint32(2166136261)
	for i := 0; i < len(tenant); i++ {
		h ^= uint32(tenant[i])
		h *= 16777619
	}
	return int(h) % len(sh.shards)
}

// shardIndexOf reports which shard index currently owns the tenant.
func (sh *sharder) shardIndexOf(tenant string) int {
	if sh.hasAssign.Load() {
		sh.assignMu.RLock()
		idx, ok := sh.assigned[tenant]
		sh.assignMu.RUnlock()
		if ok {
			return idx
		}
	}
	return sh.hashShard(tenant)
}

// numShards returns the worker count (migration targets are validated
// against it).
func (sh *sharder) numShards() int { return len(sh.shards) }

// assignShard pins a tenant's records to shard idx, overriding the hash
// (idx < 0 clears the pin, restoring hash placement). New ingest routes to
// the new shard immediately; records already queued on the old shard are the
// migration's problem (it flushes before swapping state).
func (sh *sharder) assignShard(tenant string, idx int) error {
	if idx >= len(sh.shards) {
		return fmt.Errorf("shard %d out of range [0,%d)", idx, len(sh.shards))
	}
	sh.assignMu.Lock()
	defer sh.assignMu.Unlock()
	if idx < 0 {
		delete(sh.assigned, tenant)
	} else {
		if sh.assigned == nil {
			sh.assigned = make(map[string]int)
		}
		sh.assigned[tenant] = idx
	}
	sh.hasAssign.Store(len(sh.assigned) > 0)
	return nil
}

// Ingest validates recs and enqueues the valid ones onto their owning
// shards, blocking while a shard queue is full. Validation is synchronous
// so callers learn about unknown tenants, out-of-range sites and
// out-of-range values immediately; processing is asynchronous (see Flush
// for the visibility barrier). Returns the number accepted, the per-record
// rejections (throttles carry Code == codeThrottled), and — when any record
// was throttled — the largest Retry-After hint among them.
func (sh *sharder) Ingest(recs []Record) (int, []RecordError, time.Duration) {
	if m := sh.met; m != nil {
		m.batchRecords.Observe(float64(len(recs)))
		defer func(t0 time.Time) {
			m.ingestSecs.Observe(time.Since(t0).Seconds())
		}(time.Now())
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var errs []RecordError
	var retryAfter time.Duration
	if sh.closed {
		for i := range recs {
			errs = append(errs, RecordError{Index: i, Err: "service shutting down"})
		}
		sh.rejected.Add(int64(len(errs)))
		return 0, errs, 0
	}
	// Partition per shard, preserving submission order within each shard.
	// Partitions come from the record-batch pool; the shard worker returns
	// them once delivered.
	parts := make(map[*shard][]Record)
	throttles := 0
	for i, rec := range recs {
		t := sh.reg.Get(rec.Tenant)
		if t == nil {
			errs = append(errs, RecordError{Index: i, Err: fmt.Sprintf("tenant %q not found", rec.Tenant)})
			continue
		}
		if k := t.K(); rec.Site < 0 || rec.Site >= k {
			errs = append(errs, RecordError{Index: i,
				Err: fmt.Sprintf("site %d out of range [0,%d)", rec.Site, k)})
			continue
		}
		if t.perturbed() && rec.Value >= MaxPerturbedValue {
			errs = append(errs, RecordError{Index: i,
				Err: fmt.Sprintf("value %d out of range [0, %d) for kind %q", rec.Value, MaxPerturbedValue, t.cfg.Kind)})
			continue
		}
		// QoS admission runs after validation: a throttle means "valid but
		// not now", and only valid traffic should drain the rate bucket.
		if ok, retry := t.admit(1); !ok {
			throttles++
			if retry > retryAfter {
				retryAfter = retry
			}
			errs = append(errs, RecordError{Index: i, Code: codeThrottled,
				Err: fmt.Sprintf("tenant %q over its ingest limit, retry in %v", rec.Tenant, retry)})
			continue
		}
		t.queued.Add(1)
		s := sh.shardOf(rec.Tenant)
		part, ok := parts[s]
		if !ok {
			part = getRecordBatch()
		}
		parts[s] = append(part, rec)
	}
	accepted := 0
	for s, part := range parts {
		s.ch <- shardMsg{recs: part}
		accepted += len(part)
	}
	sh.accepted.Add(int64(accepted))
	sh.throttled.Add(int64(throttles))
	sh.rejected.Add(int64(len(errs) - throttles))
	return accepted, errs, retryAfter
}

// IngestGrouped is the remoteShard ingest path: it accepts one
// already-grouped (tenant, site) value batch — typically decoded from a
// network frame — validates it against the tenant's configuration, and
// enqueues it on the tenant's owning shard in a single channel operation.
// The batch then flows intact into the tenant's cluster, where the
// tracker's FeedLocalBatch ingests it with one site-lock acquisition per
// escalation-free run. Out-of-range values for perturbed kinds are
// filtered and counted rejected; a nil tenant or out-of-range site refuses
// the whole batch with a non-nil error (accepted = 0) so the transport can
// reject the frame. QoS admission runs on the surviving values as one unit:
// a denied batch is dropped whole and counted throttled — NOT rejected,
// because the frame is still acked (a frame reject would make the sender
// discard it permanently, turning a transient throttle into data loss the
// sender never learns about; drop accounting is the TCP edge's contract).
// The sharder takes ownership of values in every case: batches it cannot
// deliver go back to the runtime batch pool.
func (sh *sharder) IngestGrouped(tenant string, site int, values []uint64, node string, nodeSeq uint64) (accepted, rejected, throttled int, err error) {
	if m := sh.met; m != nil {
		m.batchRecords.Observe(float64(len(values)))
		defer func(t0 time.Time) {
			m.ingestSecs.Observe(time.Since(t0).Seconds())
		}(time.Now())
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.closed {
		runtime.PutBatch(values)
		return 0, 0, 0, errShuttingDown
	}
	t := sh.reg.Get(tenant)
	if t == nil {
		sh.rejected.Add(int64(len(values)))
		runtime.PutBatch(values)
		return 0, len(values), 0, fmt.Errorf("tenant %q not found", tenant)
	}
	if k := t.K(); site < 0 || site >= k {
		sh.rejected.Add(int64(len(values)))
		runtime.PutBatch(values)
		return 0, len(values), 0, fmt.Errorf("site %d out of range [0,%d)", site, k)
	}
	if t.perturbed() {
		kept := values[:0]
		for _, v := range values {
			if v >= MaxPerturbedValue {
				rejected++
				continue
			}
			kept = append(kept, v)
		}
		values = kept
	}
	sh.rejected.Add(int64(rejected))
	if len(values) == 0 {
		runtime.PutBatch(values)
		return 0, rejected, 0, nil
	}
	if ok, _ := t.admit(len(values)); !ok {
		throttled = len(values)
		sh.throttled.Add(int64(throttled))
		runtime.PutBatch(values)
		return 0, rejected, throttled, nil
	}
	t.queued.Add(int64(len(values)))
	s := sh.shardOf(tenant)
	s.ch <- shardMsg{group: &remoteGroup{tenant: tenant, site: site, values: values,
		node: node, nodeSeq: nodeSeq}}
	sh.accepted.Add(int64(len(values)))
	return len(values), rejected, 0, nil
}

// worker drains one shard queue: group each batch by (tenant, site), apply
// the tenant's perturbation, and feed each group through the cluster's
// batched path. Pre-grouped remote batches skip the grouping pass. The
// grouping scratch (map, order, group structs) lives per worker and is
// reused across batches, so steady-state delivery does not allocate.
func (sh *sharder) worker(s *shard) {
	defer s.wg.Done()
	scratch := &deliverScratch{groups: make(map[groupKey]*group)}
	for msg := range s.ch {
		if msg.barrier != nil {
			msg.barrier <- struct{}{}
			continue
		}
		if msg.group != nil {
			sh.deliverGroup(msg.group)
			continue
		}
		sh.deliver(msg.recs, scratch)
		putRecordBatch(msg.recs)
	}
}

// groupKey addresses one (tenant, site) sub-batch within a shard delivery.
type groupKey struct {
	tenant string
	site   int
}

// group is one (tenant, site) sub-batch being assembled for SendBatch.
type group struct {
	t    *Tenant
	site int
	keys []uint64
}

// deliverScratch is a shard worker's reusable grouping state.
type deliverScratch struct {
	groups map[groupKey]*group
	order  []*group  // encounter order, for deterministic delivery
	free   []*group  // recycled group structs
	locked []*Tenant // durable tenants whose durMu this delivery holds
}

// lockTenant resolves a tenant name to its live instance with its delivery
// gate (durMu) held, once per delivery (the scratch list is tiny — a
// delivery touches a handful of tenants — so a linear scan beats a map).
// Holding durMu across {perturb, WAL append, send} for the whole delivery
// keeps the checkpointer from capturing state mid-batch, and the
// get-lock-recheck loop makes delivery safe against membership operations:
// if the registry swapped the instance (tenant migration restores a fresh
// Tenant) between the lookup and the lock, the delivery would otherwise land
// on a drained tracker and the records would vanish. nil means the tenant is
// gone.
func (sh *sharder) lockTenant(name string, ds *deliverScratch) *Tenant {
	for _, l := range ds.locked {
		if l.cfg.Name == name {
			return l
		}
	}
	for {
		t := sh.reg.Get(name)
		if t == nil {
			return nil
		}
		t.durMu.Lock()
		if sh.reg.Get(name) == t {
			ds.locked = append(ds.locked, t)
			return t
		}
		t.durMu.Unlock() // lost a migration race; retry against the new instance
	}
}

// unlockTenants releases every delivery gate taken this delivery.
func (ds *deliverScratch) unlockTenants() {
	for i, t := range ds.locked {
		t.durMu.Unlock()
		ds.locked[i] = nil
	}
	ds.locked = ds.locked[:0]
}

// take returns a zeroed group struct, recycling one when available.
func (ds *deliverScratch) take() *group {
	if n := len(ds.free); n > 0 {
		g := ds.free[n-1]
		ds.free = ds.free[:n-1]
		return g
	}
	return &group{}
}

// reset recycles the round's group structs and clears the index for the
// next batch. Key slices are not touched: their ownership passed to the
// clusters on delivery.
func (ds *deliverScratch) reset() {
	for _, g := range ds.order {
		g.t, g.keys = nil, nil
		ds.free = append(ds.free, g)
	}
	ds.order = ds.order[:0]
	clear(ds.groups)
}

// deliverGroup feeds one pre-grouped remote batch: perturb in place on the
// owning shard goroutine (which owns the tenant's perturbation state), then
// one SendBatch. The {perturb, WAL append, send} step runs under the
// tenant's delivery gate (durMu, with the same get-lock-recheck loop as
// lockTenant) so neither a checkpoint nor a membership operation captures
// state mid-batch.
func (sh *sharder) deliverGroup(g *remoteGroup) {
	var t *Tenant
	for {
		t = sh.reg.Get(g.tenant)
		if t == nil {
			sh.lost.Add(int64(len(g.values))) // tenant deleted between accept and delivery
			runtime.PutBatch(g.values)
			return
		}
		t.durMu.Lock()
		if sh.reg.Get(g.tenant) == t {
			break
		}
		t.durMu.Unlock() // lost a migration race; retry against the new instance
	}
	defer t.durMu.Unlock()
	// The batch leaves the shard pipeline: release its queue-share. (If the
	// tenant was deleted and recreated in flight, the release lands on the
	// new instance — a transient undercount the >= share check tolerates.)
	t.queued.Add(-int64(len(g.values)))
	site := g.site
	if site >= t.K() {
		// Membership shrank between accept and delivery: fold onto site 0,
		// matching the engine's Reconfigure fold, so no arrival is lost.
		site = 0
	}
	if t.perturbed() {
		for i, v := range g.values {
			g.values[i] = t.perturb(v)
		}
	}
	sh.walAppend(t, site, g.values, g.node, g.nodeSeq)
	// Ownership of the values slice passes to the cluster.
	if err := t.sendBatch(site, g.values); err != nil {
		sh.lost.Add(int64(len(g.values)))
	}
}

// walAppend logs one perturbed batch to the tenant's WAL (caller holds
// durMu), carrying the remote frame's provenance so recovery can re-derive
// per-node dedup cursors ("" / 0 on the HTTP path). An append failure fails
// open: the batch is still delivered — losing durability for it beats
// refusing ingest the moment a disk degrades — and the error is counted so
// operators see it (see docs/durability.md).
func (sh *sharder) walAppend(t *Tenant, site int, keys []uint64, node string, nodeSeq uint64) {
	if t.dur == nil {
		return
	}
	if _, err := t.dur.Append(site, keys, node, nodeSeq); err != nil && sh.met != nil {
		sh.met.walErrors.Inc()
	}
}

// deliver feeds one shard batch, grouped by (tenant, site) across the whole
// batch so interleaved workloads still amortize into one SendBatch per
// group. Record order is preserved within each (tenant, site) pair — the
// only order the runtime observes, since each site has its own ingestion
// queue.
func (sh *sharder) deliver(recs []Record, ds *deliverScratch) {
	var (
		cur     *Tenant
		curName string
		looked  bool
	)
	for _, rec := range recs {
		if !looked || rec.Tenant != curName {
			curName, looked = rec.Tenant, true
			cur = sh.lockTenant(rec.Tenant, ds)
		}
		if cur == nil {
			sh.lost.Add(1) // tenant deleted between accept and delivery
			continue
		}
		cur.queued.Add(-1) // leaving the shard pipeline: release queue-share
		v := rec.Value
		if cur.perturbed() {
			v = cur.perturb(v)
		}
		site := rec.Site
		if site >= cur.K() {
			site = 0 // membership shrank in flight: fold, matching the engine
		}
		gk := groupKey{rec.Tenant, site}
		g := ds.groups[gk]
		if g == nil {
			// Key slices come from the runtime batch pool; the cluster's
			// site goroutine recycles them after feeding.
			g = ds.take()
			g.t, g.site, g.keys = cur, site, runtime.GetBatch(16)
			ds.groups[gk] = g
			ds.order = append(ds.order, g)
		}
		g.keys = append(g.keys, v)
	}
	for _, g := range ds.order {
		sh.walAppend(g.t, g.site, g.keys, "", 0)
		// Ownership of keys passes to the cluster.
		if err := g.t.sendBatch(g.site, g.keys); err != nil {
			sh.lost.Add(int64(len(g.keys)))
		}
	}
	ds.unlockTenants()
	ds.reset()
}

// Flush blocks until every record accepted before the call is visible to
// queries: first a barrier through every shard queue (all accepted batches
// delivered to the clusters), then a wait until each tenant's cluster has
// processed everything delivered. Closed tenants are skipped; after Close
// it is a no-op (Close itself flushes by draining the queues).
func (sh *sharder) Flush() {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.closed {
		return
	}
	done := make(chan struct{}, len(sh.shards))
	for _, s := range sh.shards {
		s.ch <- shardMsg{barrier: done}
	}
	for range sh.shards {
		<-done
	}
	for _, t := range sh.reg.all() {
		for !t.isClosed() && !t.synced() {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// Close stops the pipeline: no further records are accepted, shard queues
// are closed, and the workers finish delivering everything already
// accepted. Safe against concurrent Ingest/Flush; idempotent.
func (sh *sharder) Close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	sh.mu.Unlock()
	for _, s := range sh.shards {
		close(s.ch)
	}
	sh.shards[0].wg.Wait()
}

// Accepted, Rejected, Throttled and Lost return the pipeline's lifetime
// record counters: accepted at ingest, rejected at validation, denied by
// per-tenant QoS admission, and accepted but undeliverable (tenant deleted
// or closed before delivery).
func (sh *sharder) Accepted() int64  { return sh.accepted.Load() }
func (sh *sharder) Rejected() int64  { return sh.rejected.Load() }
func (sh *sharder) Throttled() int64 { return sh.throttled.Load() }
func (sh *sharder) Lost() int64      { return sh.lost.Load() }

// QueueDepths returns the current queue length of each shard, in shard
// order. The snapshot is inherently racy against the workers — gauge
// material, not an invariant.
func (sh *sharder) QueueDepths() []int {
	out := make([]int, len(sh.shards))
	for i, s := range sh.shards {
		out[i] = len(s.ch)
	}
	return out
}
