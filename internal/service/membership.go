package service

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"disttrack/internal/runtime"
)

// Elastic membership. The paper's protocols handle a site set that changes
// by restarting the current round over the new set (every protocol is
// round-based, and a round restart only costs the round's partial progress)
// — core.Tracker.Reconfigure implements exactly that, folding removed
// sites' counts into site 0 so totals are preserved. This file lifts that
// engine capability to the service: live site add/remove on a running
// tenant (ReconfigureTenant), moving a tenant between shard workers with a
// checkpoint as the transfer format (MigrateTenant), and the membership
// epoch both advertise to site nodes.
//
// Every membership operation is serialized by Server.memberMu and ends with
// an epoch bump: the new epoch is advertised to the ingest listener,
// persisted in the durable cursor table, and every node connection is cut —
// nodes re-handshake, are refused while they still carry the old epoch, and
// adopt the new one from the goodbye (internal/remote). Mid-stream frames
// from nodes that have not yet noticed are still safe: site validation and
// the delivery-path folds treat an out-of-range site as site 0, matching
// the engine's own fold.

// bumpEpoch advances the membership epoch and propagates it: advertise to
// the ingest listener first (so every hello from here on is measured
// against the new epoch), persist the cursor table carrying it (durable
// restarts resume at the new epoch), then cut every node connection so the
// fleet re-handshakes. Caller holds memberMu.
func (s *Server) bumpEpoch() uint64 {
	e := s.epoch.Add(1)
	ri := s.remote.Load()
	if ri != nil {
		ri.srv.SetEpoch(e)
	}
	if s.dur != nil {
		if err := s.saveCursors(); err != nil {
			s.met.ckptErrors.Inc()
		}
	}
	if ri != nil {
		ri.srv.DisconnectAll()
	}
	return e
}

// ReconfigureTenant changes a live tenant's site count to newK — the
// paper's membership change, online. The engine restarts the tenant's
// protocol round over the new site set; on a shrink, the removed sites'
// exact counts fold into site 0, so no arrival is ever lost and the
// protocol's ε-contract holds over the stream's true total throughout.
//
// Sequence, under the tenant's delivery gate (durMu) so no delivery
// interleaves: build the replacement cluster at newK (idle until
// published), drain the old cluster (everything already enqueued is
// absorbed — the drain cannot deadlock because deliveries, the only
// senders, are fenced by durMu), reconfigure the tracker, swap the cluster
// pointer and the live k, then persist — checkpoint BEFORE meta.json, so a
// crash between the two leaves an old-k meta with a new-k checkpoint: the
// restore fails the k consistency check, the checkpoint is quarantined, and
// recovery falls back to the previous checkpoint plus WAL replay (meta
// first would instead fail every restore and lose the fold). Finally the
// membership epoch is bumped.
func (s *Server) ReconfigureTenant(name string, newK int) error {
	if newK < 1 {
		return fmt.Errorf("k must be >= 1, got %d", newK)
	}
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	t := s.reg.Get(name)
	if t == nil {
		return fmt.Errorf("tenant %q not found", name)
	}
	if t.K() == newK {
		return nil // already there; no epoch bump, nodes stay connected
	}
	// Build the replacement before any destructive step: its goroutines idle
	// on empty channels until the pointer swap publishes it, and a
	// construction failure aborts with the tenant untouched.
	newClu, err := runtime.New(context.Background(), t.tr, newK, s.cfg.SiteBuffer)
	if err != nil {
		return err
	}
	t.durMu.Lock()
	if s.reg.Get(name) != t || t.isClosed() {
		t.durMu.Unlock()
		newClu.Stop()
		return fmt.Errorf("tenant %q is closing", name)
	}
	old := t.cluster()
	old.Drain()
	t.procBase.Add(old.Stats().Processed)
	if err := t.tr.Reconfigure(newK); err != nil {
		// Validation failures only (newK ≥ 1 is pre-checked, so this is
		// effectively unreachable): rebuild a cluster at the old k so the
		// tenant keeps working — the old one is already drained.
		newClu.Stop()
		if rb, rerr := runtime.New(context.Background(), t.tr, t.K(), s.cfg.SiteBuffer); rerr == nil {
			t.clu.Store(rb)
		}
		t.durMu.Unlock()
		return err
	}
	t.clu.Store(newClu)
	t.kLive.Store(int32(newK))
	t.cfgMu.Lock()
	t.cfg.K = newK
	t.cfgMu.Unlock()
	if t.dur != nil {
		// Persist the new shape: checkpoint first (see the doc comment),
		// meta second. Failures degrade durability, not the reconfiguration
		// — the fold has already happened; refusing it now would leave the
		// membership half-applied.
		if err := s.persistReconfigured(t); err != nil {
			s.met.ckptErrors.Inc()
		}
	}
	t.durMu.Unlock()
	s.memChanges.Add(1)
	s.met.memChanges.Inc()
	s.bumpEpoch()
	return nil
}

// persistReconfigured writes the post-reconfigure checkpoint and the
// updated meta.json, in that order. Caller holds durMu with the cluster
// drained, so the capture is quiescent and covers the entire WAL.
func (s *Server) persistReconfigured(t *Tenant) error {
	payload, err := t.encodeDurable()
	if err != nil {
		return err
	}
	cover := t.dur.NextSeq() - 1
	if _, _, err := t.dur.WriteCheckpoint(cover, payload); err != nil {
		return err
	}
	meta, err := json.Marshal(t.Config())
	if err != nil {
		return err
	}
	return t.dur.Create(meta)
}

// MigrateTenant moves a tenant onto shard worker target, using the durable
// checkpoint payload as the transfer format: route new ingest to the target
// shard, run the pipeline barrier so the old worker's queue drains, fence
// deliveries (durMu), capture the tenant's state, restore it into a fresh
// instance, swap the registry entry, resume. A delivery in flight during
// the swap re-resolves the tenant through the registry after taking the
// gate (shard.go's get-lock-recheck), so no record is lost and none is
// applied twice. Works for non-durable tenants too — the checkpoint
// payload is an in-memory format first, a disk format second.
func (s *Server) MigrateTenant(name string, target int) error {
	if target < 0 || target >= s.sh.numShards() {
		return fmt.Errorf("shard %d out of range [0,%d)", target, s.sh.numShards())
	}
	s.memberMu.Lock()
	defer s.memberMu.Unlock()
	t := s.reg.Get(name)
	if t == nil {
		return fmt.Errorf("tenant %q not found", name)
	}
	if s.sh.shardIndexOf(name) == target {
		return nil // already placed; no epoch bump
	}
	t0 := time.Now()
	if err := s.sh.assignShard(name, target); err != nil {
		return err
	}
	// Records already queued on the old worker drain through the barrier and
	// land on the old instance; records accepted from here on queue on the
	// target worker and block on durMu until the swap publishes the new one.
	s.sh.Flush()
	t.durMu.Lock()
	unwind := func() {
		t.durMu.Unlock()
		_ = s.sh.assignShard(name, -1)
	}
	if s.reg.Get(name) != t || t.isClosed() {
		unwind()
		return fmt.Errorf("tenant %q is closing", name)
	}
	for !t.synced() {
		if t.isClosed() {
			unwind()
			return fmt.Errorf("tenant %q is closing", name)
		}
		time.Sleep(100 * time.Microsecond)
	}
	payload, err := t.encodeDurable()
	if err != nil {
		unwind()
		return err
	}
	nt, err := newTenant(t.Config(), s.cfg.SiteBuffer, s.met)
	if err != nil {
		unwind()
		return err
	}
	if err := nt.restoreDurable(payload); err != nil {
		nt.close(false)
		unwind()
		return fmt.Errorf("restore into migrated instance: %w", err)
	}
	// Hand over the durable state: same WAL handle, plus a checkpoint at the
	// cut point so a crash right after the swap recovers the migrated state
	// from the checkpoint alone. The old instance keeps its (now unused)
	// pointer — it is never closed through it.
	nt.dur = t.dur
	if nt.dur != nil {
		if _, _, err := nt.dur.WriteCheckpoint(nt.dur.NextSeq()-1, payload); err != nil {
			s.met.ckptErrors.Inc()
		}
	}
	nt.queued.Store(t.queued.Load())
	if old := s.reg.replace(nt); old == nil {
		// A concurrent delete removed the name; discard the rebuilt instance
		// (its durable handle belongs to the deleted tenant — leave it).
		nt.close(false)
		unwind()
		return fmt.Errorf("tenant %q was deleted during migration", name)
	}
	// Close the old instance BEFORE releasing its gate: it still points at
	// the now-shared WAL handle, and a checkpointer that won the durMu race
	// after us would otherwise capture the stale tracker under a cover that
	// already includes the new instance's appends — silent data loss on
	// recovery. Closed tenants are skipped by the checkpointer. The instance
	// is private now (nothing reaches it through the registry), its cluster
	// absorbed everything before the capture, and its durable handle lives
	// on in nt — no dur teardown here.
	t.close(false)
	t.durMu.Unlock()
	s.migrations.Add(1)
	s.met.migrations.Inc()
	s.met.migrationSecs.Observe(time.Since(t0).Seconds())
	s.bumpEpoch()
	return nil
}

// MembershipStatus is the /healthz membership section.
type MembershipStatus struct {
	Epoch          uint64 `json:"epoch"`
	Changes        int64  `json:"changes"`         // completed site add/remove reconfigurations
	Migrations     int64  `json:"migrations"`      // completed tenant migrations
	DurableCursors bool   `json:"durable_cursors"` // persisted cursor table loaded at boot
	CursorNodes    int    `json:"cursor_nodes"`    // per-node dedup cursors held
}

// membershipStatus snapshots the membership plane for /healthz.
func (s *Server) membershipStatus() MembershipStatus {
	ms := MembershipStatus{
		Epoch:      s.epoch.Load(),
		Changes:    s.memChanges.Load(),
		Migrations: s.migrations.Load(),
	}
	if ri := s.remote.Load(); ri != nil {
		ms.CursorNodes = len(ri.srv.Cursors())
	}
	if s.dur != nil {
		s.dur.mu.Lock()
		ms.DurableCursors = s.dur.cursorsFound
		if ms.CursorNodes == 0 {
			ms.CursorNodes = len(s.dur.cursors)
		}
		s.dur.mu.Unlock()
	}
	return ms
}

// Epoch returns the coordinator's current membership epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }
