package service

import (
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"disttrack/internal/remote"
)

// TestReconfigureUnderFire drives live site add/remove against all three
// tenant kinds while ingest goroutines hammer the pipeline, then checks the
// reconfigure law: no accepted arrival is lost or double-counted across any
// number of membership changes (shrinks fold removed sites into site 0), and
// the protocols' ε-contract still holds over the stream's true total. Run
// with -race: this is also the locking discipline's stress test.
func TestReconfigureUnderFire(t *testing.T) {
	const eps = 0.05
	s := New(Config{})
	defer s.Close()
	names := []string{"hh", "quant", "allq"}
	for _, tc := range []TenantConfig{
		{Name: "hh", Kind: KindHH, K: 4, Eps: eps},
		{Name: "quant", Kind: KindQuantile, K: 4, Eps: eps, Phis: []float64{0.5}},
		{Name: "allq", Kind: KindAllQ, K: 4, Eps: eps},
	} {
		mustCreate(t, s, tc)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	sent := make([]*atomic.Int64, len(names))
	for i, name := range names {
		sent[i] = &atomic.Int64{}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			for v := uint64(0); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				// Site 1 exists for most of the schedule but not at k=1: a
				// record validated at the old k and delivered after the shrink
				// exercises the in-flight fold; one rejected at admission is
				// simply not counted as sent.
				rec := Record{Tenant: name, Site: int(v % 2), Value: v % 128}
				if acc, _ := s.Ingest([]Record{rec}); acc == 1 {
					sent[i].Add(1)
				}
			}
		}(i, name)
	}

	schedule := []int{2, 6, 1, 5, 3}
	for _, k := range schedule {
		time.Sleep(2 * time.Millisecond)
		for _, name := range names {
			if err := s.ReconfigureTenant(name, k); err != nil {
				t.Errorf("reconfigure %s to k=%d: %v", name, k, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	s.Flush()

	if got := s.Epoch(); got != 1+uint64(len(schedule)*len(names)) {
		t.Errorf("epoch %d after %d reconfigurations, want %d",
			got, len(schedule)*len(names), 1+len(schedule)*len(names))
	}
	finalK := schedule[len(schedule)-1]
	for i, name := range names {
		st := s.reg.Get(name).Stats()
		if len(st.SiteCounts) != finalK {
			t.Errorf("%s: %d sites after reconfigure, want %d", name, len(st.SiteCounts), finalK)
		}
		var sum int64
		for _, c := range st.SiteCounts {
			sum += int64(c)
		}
		if sum != sent[i].Load() {
			t.Errorf("%s: site counts sum %d, want %d accepted (lost or double-counted across reconfigures)",
				name, sum, sent[i].Load())
		}
	}

	// ε-contract over the true totals: values cycle 0..127 uniformly.
	n := sent[0].Load()
	if f, err := s.reg.Get("hh").Frequency(7); err != nil ||
		absDiff(int64(f), n/128) > int64(eps*float64(n))+1 {
		t.Errorf("hh frequency(7)=%d err=%v, want %d ± %d", f, err, n/128, int64(eps*float64(n))+1)
	}
	if med, err := s.reg.Get("quant").Quantile(0.5); err != nil || med < 64-14 || med > 64+14 {
		t.Errorf("quant median %d err=%v, want ≈ 63", med, err)
	}
	nq := sent[2].Load()
	if rank, total, err := s.reg.Get("allq").Rank(64); err != nil || total != nq ||
		absDiff(rank, nq/2) > int64(2*eps*float64(nq))+1 {
		t.Errorf("allq rank(64)=%d/%d err=%v, want ≈ %d", rank, total, err, nq/2)
	}
}

func absDiff(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestMigrateUnderFire moves a tenant between shard workers while ingest
// runs, several hops, and checks nothing is lost or doubled and the tenant
// keeps answering queries from the migrated state.
func TestMigrateUnderFire(t *testing.T) {
	s := New(Config{Shards: 4})
	defer s.Close()
	mustCreate(t, s, TenantConfig{Name: "m", Kind: KindHH, K: 2, Eps: 0.1})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var sent atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := uint64(0); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if acc, _ := s.Ingest([]Record{{Tenant: "m", Site: int(v % 2), Value: v % 16}}); acc == 1 {
				sent.Add(1)
			}
		}
	}()

	hops := 0
	for _, target := range []int{1, 3, 0, 2} {
		time.Sleep(2 * time.Millisecond)
		if s.sh.shardIndexOf("m") == target {
			continue
		}
		if err := s.MigrateTenant("m", target); err != nil {
			t.Fatalf("migrate to shard %d: %v", target, err)
		}
		hops++
		if got := s.sh.shardIndexOf("m"); got != target {
			t.Fatalf("tenant on shard %d after migration, want %d", got, target)
		}
	}
	close(stop)
	wg.Wait()
	s.Flush()

	if hops == 0 {
		t.Fatal("schedule produced zero migrations")
	}
	if got := s.migrations.Load(); got != int64(hops) {
		t.Errorf("migrations counter %d, want %d", got, hops)
	}
	if got := s.Epoch(); got != 1+uint64(hops) {
		t.Errorf("epoch %d after %d migrations, want %d", got, hops, 1+hops)
	}
	st := s.reg.Get("m").Stats()
	var sum int64
	for _, c := range st.SiteCounts {
		sum += int64(c)
	}
	if sum != sent.Load() {
		t.Errorf("site counts sum %d after %d migrations, want %d", sum, hops, sent.Load())
	}
	n := sent.Load()
	if f, err := s.reg.Get("m").Frequency(7); err != nil ||
		absDiff(int64(f), n/16) > int64(0.1*float64(n))+1 {
		t.Errorf("frequency(7)=%d err=%v after migrations, want %d ± %d", f, err, n/16, int64(0.1*float64(n))+1)
	}
	// Migration must not leave a stale pin dangling for other tenants.
	if s.sh.shardIndexOf("absent") != s.sh.hashShard("absent") {
		t.Error("unrelated tenant not on its hash shard")
	}
}

// nodeDial performs a raw site-node handshake and returns the open
// connection plus the coordinator's welcome (or goodbye) frame.
func nodeDial(t *testing.T, addr, node string, epoch uint64) (net.Conn, remote.TFrame) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := remote.WriteTFrame(conn, remote.TFrame{Type: remote.TypeNodeHello, Tenant: node, Seq: epoch}); err != nil {
		t.Fatal(err)
	}
	f, err := remote.ReadTFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return conn, f
}

// sendBatches streams value batches [from,to] (one value per frame, seq ==
// frame number, value == seq-1, site == (seq-1) % 2) and requires an ack for
// each.
func sendBatches(t *testing.T, conn net.Conn, tenant string, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		f := remote.TFrame{Type: remote.TypeBatch, Seq: seq, Tenant: tenant,
			Site: uint32((seq - 1) % 2), Kind: remote.TKindHH, Values: []uint64{seq - 1}}
		if err := remote.WriteTFrame(conn, f); err != nil {
			t.Fatalf("write batch %d: %v", seq, err)
		}
		ack, err := remote.ReadTFrame(conn)
		if err != nil || ack.Type != remote.TypeBatchAck || ack.Seq != seq {
			t.Fatalf("batch %d: ack %+v err=%v", seq, ack, err)
		}
	}
}

// netFlush runs the network flush fence.
func netFlush(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := remote.WriteTFrame(conn, remote.TFrame{Type: remote.TypeNetFlush, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if ack, err := remote.ReadTFrame(conn); err != nil || ack.Type != remote.TypeNetFlushAck {
		t.Fatalf("flush ack %+v err=%v", ack, err)
	}
}

// siteSum sums a tenant's per-site counts.
func siteSum(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	tn := s.reg.Get(name)
	if tn == nil {
		t.Fatalf("tenant %s missing", name)
	}
	var sum int64
	for _, c := range tn.Stats().SiteCounts {
		sum += int64(c)
	}
	return sum
}

// TestDurableCursorRestartExactlyOnce is the tentpole's crash test: a
// coordinator killed without any shutdown path recovers its per-node seq
// cursors — from the persisted cursor table merged with WAL record
// provenance, whichever is newer — so a site node replaying its entire
// unacknowledged tail after the restart lands exactly once, even though the
// replacement process never saw those frames and its in-memory dedup state
// started empty. Also pins epoch continuity: the membership epoch survives
// the crash, a stale hello is refused, and the node re-adopts it from the
// welcome.
func TestDurableCursorRestartExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	ri, err := s.ServeRemote("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, s, TenantConfig{Name: "t", Kind: KindHH, K: 2, Eps: 0.1})

	conn, welcome := nodeDial(t, ri.Addr(), "n1", 0)
	if welcome.Type != remote.TypeNodeWelcome || welcome.Seq != 0 || welcome.Site != 1 {
		t.Fatalf("first welcome %+v, want seq 0 epoch 1", welcome)
	}
	sendBatches(t, conn, "t", 1, 20)
	netFlush(t, conn)
	conn.Close()

	// A membership change persists the cursor table at seq 20 and bumps the
	// epoch to 2 — so the crash below has a cursor FILE that is 20 frames
	// stale, and only the WAL tail's provenance covers 21..40. Recovery must
	// take the max of the two.
	if err := s.ReconfigureTenant("t", 3); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch %d after reconfigure, want 2", s.Epoch())
	}

	// A node that missed the change is refused until it adopts the new epoch.
	staleConn, goodbye := nodeDial(t, ri.Addr(), "n1", 1)
	if goodbye.Type != remote.TypeNodeGoodbye || goodbye.Seq != 2 {
		t.Fatalf("stale-epoch response %+v, want goodbye naming epoch 2", goodbye)
	}
	staleConn.Close()

	conn, welcome = nodeDial(t, ri.Addr(), "n1", 2)
	if welcome.Type != remote.TypeNodeWelcome || welcome.Seq != 20 || welcome.Site != 2 {
		t.Fatalf("post-reconfigure welcome %+v, want seq 20 epoch 2", welcome)
	}
	sendBatches(t, conn, "t", 21, 40)
	netFlush(t, conn)
	if sum := siteSum(t, s, "t"); sum != 40 {
		t.Fatalf("pre-crash sum %d, want 40", sum)
	}

	// Crash: no Close, no final checkpoint, no cursor save. The listener dies
	// with the process; the WAL tail (21..40) exists only as records with
	// provenance.
	conn.Close()
	ri.Close()
	abandon(s)

	r := openDurable(t, dir)
	defer r.Close()
	rs := r.RecoveryStats()
	if !rs.DurableCursors || rs.CursorNodes != 1 {
		t.Fatalf("recovery stats %+v, want durable cursors with 1 node", rs)
	}
	if r.Epoch() != 2 {
		t.Fatalf("epoch %d after crash recovery, want 2", r.Epoch())
	}
	if sum := siteSum(t, r, "t"); sum != 40 {
		t.Fatalf("recovered sum %d, want 40", sum)
	}
	ri2, err := r.ServeRemote("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// The replacement coordinator welcomes the node at the recovered cursor:
	// max(file = 20, WAL provenance = 40) = 40.
	conn, welcome = nodeDial(t, ri2.Addr(), "n1", 0)
	if welcome.Type != remote.TypeNodeWelcome || welcome.Seq != 40 || welcome.Site != 2 {
		t.Fatalf("post-crash welcome %+v, want seq 40 epoch 2", welcome)
	}
	// Replay the ENTIRE tail — far more than anything the new process ever
	// applied in memory. Every frame must be acked (so the node retires it)
	// and none may count twice.
	sendBatches(t, conn, "t", 1, 40)
	netFlush(t, conn)
	if st := ri2.srv.Stats(); st.Duplicates != 40 {
		t.Fatalf("duplicates %d after full-tail replay, want 40", st.Duplicates)
	}
	if sum := siteSum(t, r, "t"); sum != 40 {
		t.Fatalf("sum %d after full-tail replay, want 40 (double count)", sum)
	}
	// And the stream continues: the next fresh frame applies normally.
	sendBatches(t, conn, "t", 41, 41)
	netFlush(t, conn)
	if sum := siteSum(t, r, "t"); sum != 41 {
		t.Fatalf("sum %d after post-replay ingest, want 41", sum)
	}
	conn.Close()
}

// TestMembershipAdminAPI exercises the admin endpoints end to end and the
// /healthz membership block.
func TestMembershipAdminAPI(t *testing.T) {
	s := New(Config{Shards: 2})
	defer s.Close()
	mustCreate(t, s, TenantConfig{Name: "api", Kind: KindHH, K: 2, Eps: 0.1})
	ingestN(t, s, "api", 10)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp map[string]any
	code := jsonDo(t, ts.Client(), "POST", ts.URL+"/v1/admin/membership",
		map[string]any{"tenant": "api", "k": 4}, &resp)
	if code != 200 || resp["epoch"].(float64) != 2 {
		t.Fatalf("membership: code %d resp %v", code, resp)
	}
	if got := s.reg.Get("api").K(); got != 4 {
		t.Fatalf("k %d after admin reconfigure, want 4", got)
	}
	target := (s.sh.shardIndexOf("api") + 1) % 2
	code = jsonDo(t, ts.Client(), "POST", ts.URL+"/v1/admin/migrate",
		map[string]any{"tenant": "api", "shard": target}, &resp)
	if code != 200 || resp["epoch"].(float64) != 3 {
		t.Fatalf("migrate: code %d resp %v", code, resp)
	}
	s.Flush()
	if sum := siteSum(t, s, "api"); sum != 10 {
		t.Fatalf("sum %d after admin migrate, want 10", sum)
	}

	// Error mapping: unknown tenant 404, bad k 400, unknown field 400.
	if code := jsonDo(t, ts.Client(), "POST", ts.URL+"/v1/admin/membership",
		map[string]any{"tenant": "nope", "k": 2}, nil); code != 404 {
		t.Fatalf("unknown tenant: code %d, want 404", code)
	}
	if code := jsonDo(t, ts.Client(), "POST", ts.URL+"/v1/admin/membership",
		map[string]any{"tenant": "api", "k": 0}, nil); code != 400 {
		t.Fatalf("bad k: code %d, want 400", code)
	}
	if code := jsonDo(t, ts.Client(), "POST", ts.URL+"/v1/admin/migrate",
		map[string]any{"tenant": "api", "shard": 99}, nil); code != 400 {
		t.Fatalf("bad shard: code %d, want 400", code)
	}

	var h struct {
		Membership *MembershipStatus `json:"membership"`
	}
	if code := jsonDo(t, ts.Client(), "GET", ts.URL+"/healthz", nil, &h); code != 200 {
		t.Fatalf("healthz: code %d", code)
	}
	if h.Membership == nil || h.Membership.Epoch != 3 ||
		h.Membership.Changes != 1 || h.Membership.Migrations != 1 {
		t.Fatalf("healthz membership %+v, want epoch 3, 1 change, 1 migration", h.Membership)
	}
}

// TestDurableReconfigureRestart: a reconfigured tenant comes back at its new
// k after both a graceful restart and a crash — the checkpoint-then-meta
// persistence order with WAL replay on the crash path.
func TestDurableReconfigureRestart(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir)
	mustCreate(t, s, TenantConfig{Name: "rk", Kind: KindHH, K: 4, Eps: 0.1})
	for v := 0; v < 40; v++ {
		if acc, _ := s.Ingest([]Record{{Tenant: "rk", Site: v % 4, Value: uint64(v)}}); acc != 1 {
			t.Fatal("ingest not accepted")
		}
	}
	s.Flush()
	// Shrink 4 → 2: sites 2 and 3 fold into site 0.
	if err := s.ReconfigureTenant("rk", 2); err != nil {
		t.Fatal(err)
	}
	// More ingest at the new shape, then crash: recovery takes the
	// post-reconfigure checkpoint plus the WAL tail.
	for v := 40; v < 50; v++ {
		if acc, _ := s.Ingest([]Record{{Tenant: "rk", Site: v % 2, Value: uint64(v)}}); acc != 1 {
			t.Fatal("ingest not accepted")
		}
	}
	s.Flush()
	abandon(s)

	r := openDurable(t, dir)
	defer r.Close()
	tn := r.reg.Get("rk")
	if tn == nil || tn.K() != 2 {
		t.Fatalf("recovered tenant k: %v, want 2", tn)
	}
	if sum := siteSum(t, r, "rk"); sum != 50 {
		t.Fatalf("recovered sum %d, want 50", sum)
	}
	if r.Epoch() != 2 {
		t.Fatalf("recovered epoch %d, want 2", r.Epoch())
	}
}
