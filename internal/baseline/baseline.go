// Package baseline implements the prior approaches the paper compares
// against, so the experiment suite can regenerate the paper's claimed
// improvements:
//
//   - Naive: forward every arrival to the coordinator. Exact answers,
//     Θ(n) communication — the strawman the model exists to beat.
//
//   - Push (CGMR'05-style): each site re-ships its full local summary
//     (a Space-Saving sketch and a GK summary of size Θ(1/ε)) whenever its
//     local count grows by a (1+Θ(ε)) factor — the site-initiated
//     "holistic aggregates" scheme of Cormode, Garofalakis, Muthukrishnan
//     and Rastogi (reference [7]), the best previous bound:
//     O(k/ε² · log n) words. The coordinator answers by summing across the
//     cached per-site summaries.
//
//   - Poll: the coordinator polls all sites for fresh summaries whenever
//     its (cheaply tracked) count estimate grows by a (1+Θ(ε)) factor —
//     the classical pull-based strategy the paper's introduction contrasts
//     with "push"; also O(k/ε² · log n) words.
//
// All three answer both heavy-hitter and quantile queries with error ≤ ε,
// so cost comparisons against the core trackers are apples-to-apples.
package baseline

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"disttrack/internal/rank"
	"disttrack/internal/summary/gk"
	"disttrack/internal/summary/spacesaving"
	"disttrack/internal/wire"
)

// Tracker is the common interface of the baselines and (by adaptation) the
// core trackers, for the comparison harness.
type Tracker interface {
	Feed(site int, x uint64)
	HeavyHitters(phi float64) []uint64
	Quantile(phi float64) uint64
	Meter() *wire.Meter
}

// ---------------------------------------------------------------------------
// Naive
// ---------------------------------------------------------------------------

// Naive forwards every item; the coordinator is exact.
type Naive struct {
	k     int
	meter wire.Meter
	count map[uint64]int64
	tree  *rank.Tree
	n     int64
}

// NewNaive returns the forward-everything baseline.
func NewNaive(k int) *Naive {
	return &Naive{k: k, count: make(map[uint64]int64), tree: rank.New(0xBA5E)}
}

// Feed forwards the arrival to the coordinator.
func (t *Naive) Feed(site int, x uint64) {
	t.meter.Up(site, "item", 1)
	t.count[x]++
	t.tree.Insert(x)
	t.n++
}

// HeavyHitters returns the exact φ-heavy hitters.
func (t *Naive) HeavyHitters(phi float64) []uint64 {
	var out []uint64
	thresh := phi * float64(t.n)
	for x, c := range t.count {
		if float64(c) >= thresh {
			out = append(out, x)
		}
	}
	slices.Sort(out)
	return out
}

// Quantile returns the exact φ-quantile.
func (t *Naive) Quantile(phi float64) uint64 {
	if t.n == 0 {
		panic("baseline: Quantile before any arrival")
	}
	i := int64(phi * float64(t.n))
	if i >= t.n {
		i = t.n - 1
	}
	return t.tree.Select(int(i))
}

// Meter returns the communication meter.
func (t *Naive) Meter() *wire.Meter { return &t.meter }

// ---------------------------------------------------------------------------
// Shared summary-shipping machinery for Push and Poll
// ---------------------------------------------------------------------------

// siteSummaries is one site's local sketches plus the coordinator's cached
// copy of them.
type siteState struct {
	nj int64
	ss *spacesaving.Sketch
	qs *gk.Summary

	// Coordinator's cache: the per-item estimates and the quantile summary
	// as of the last shipment, plus the count they covered.
	cachedN     int64
	cachedFreqs []spacesaving.Entry
	cachedRanks *cachedGK
}

// cachedGK is a frozen copy of a GK summary usable for rank queries.
type cachedGK struct {
	values []uint64
	ranks  []int64 // midpoint rank estimate of each value
	n      int64
}

func freezeGK(s *gk.Summary) *cachedGK {
	// Sample the summary at its own resolution: 2/eps points bound the
	// shipped size by Θ(1/ε) words regardless of internal tuple count.
	n := s.N()
	c := &cachedGK{n: n}
	if n == 0 {
		return c
	}
	points := int(2.0/s.Eps()) + 1
	for i := 0; i <= points; i++ {
		r := int64(float64(i) * float64(n) / float64(points))
		v := s.QueryRank(r)
		if len(c.values) > 0 && v == c.values[len(c.values)-1] {
			continue
		}
		c.values = append(c.values, v)
		c.ranks = append(c.ranks, r)
	}
	return c
}

// rankEst estimates the number of local items < x with error ≤ 2ε·n.
func (c *cachedGK) rankEst(x uint64) int64 {
	if c.n == 0 || len(c.values) == 0 || x <= c.values[0] {
		return 0
	}
	i := sort.Search(len(c.values), func(i int) bool { return c.values[i] >= x })
	return c.ranks[i-1]
}

func (c *cachedGK) words() int { return 2 * len(c.values) }

// shipper is the common state of Push and Poll.
type shipper struct {
	k     int
	eps   float64
	meter wire.Meter
	sites []*siteState
	n     int64
}

func newShipper(k int, eps float64) (*shipper, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: k must be >= 1, got %d", k)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("baseline: eps must be in (0,1), got %g", eps)
	}
	t := &shipper{k: k, eps: eps}
	for j := 0; j < k; j++ {
		t.sites = append(t.sites, &siteState{
			// Summaries at ε/4 each: ε/4 sketch error + ε/2 staleness < ε.
			ss: spacesaving.NewEps(eps / 4),
			qs: gk.New(eps / 4),
		})
	}
	return t, nil
}

func (t *shipper) observe(site int, x uint64) *siteState {
	if site < 0 || site >= t.k {
		panic(fmt.Sprintf("baseline: site %d out of range [0,%d)", site, t.k))
	}
	s := t.sites[site]
	s.nj++
	t.n++
	s.ss.Add(x)
	s.qs.Add(x)
	return s
}

// ship sends site j's current summaries to the coordinator cache.
func (t *shipper) ship(j int, kind string) {
	s := t.sites[j]
	s.cachedN = s.nj
	s.cachedFreqs = s.ss.Top()
	s.cachedRanks = freezeGK(s.qs)
	t.meter.Up(j, kind, 2*len(s.cachedFreqs)+s.cachedRanks.words()+1)
}

// HeavyHitters merges the cached per-site frequency summaries.
func (t *shipper) HeavyHitters(phi float64) []uint64 {
	freqs := make(map[uint64]int64)
	var n int64
	for _, s := range t.sites {
		n += s.cachedN
		for _, e := range s.cachedFreqs {
			freqs[e.Item] += e.Count
		}
	}
	if n == 0 {
		return nil
	}
	// Cached counts overestimate by ≤ ε/4·n_j each and understate arrivals
	// since the last shipment by ≤ ε/2·n_j: classify at φ − ε/2 of the
	// cached total.
	thresh := (phi - 0.5*t.eps) * float64(n)
	var out []uint64
	for x, c := range freqs {
		if float64(c) >= thresh {
			out = append(out, x)
		}
	}
	slices.Sort(out)
	return out
}

// Quantile answers from the union of cached quantile summaries by binary
// searching the value whose merged rank estimate hits φ·n.
func (t *shipper) Quantile(phi float64) uint64 {
	var n int64
	for _, s := range t.sites {
		n += s.cachedN
	}
	if n == 0 {
		panic("baseline: Quantile before any shipment")
	}
	target := phi * float64(n)
	// Candidate values: all cached summary points.
	var vals []uint64
	for _, s := range t.sites {
		if s.cachedRanks != nil {
			vals = append(vals, s.cachedRanks.values...)
		}
	}
	slices.Sort(vals)
	best, bestErr := vals[0], math.Inf(1)
	for _, v := range vals {
		var r int64
		for _, s := range t.sites {
			r += s.cachedRanks.rankEst(v)
		}
		if err := math.Abs(float64(r) - target); err < bestErr {
			best, bestErr = v, err
		}
	}
	return best
}

// Meter returns the communication meter.
func (t *shipper) Meter() *wire.Meter { return &t.meter }

// TrueTotal returns the exact global count.
func (t *shipper) TrueTotal() int64 { return t.n }

// ---------------------------------------------------------------------------
// Push (site-initiated, CGMR'05 style)
// ---------------------------------------------------------------------------

// Push re-ships a site's summaries whenever its local count grows by a
// (1+ε/2) factor: O(k/ε²·log n) words total.
type Push struct{ shipper }

// NewPush returns the site-initiated summary-shipping baseline.
func NewPush(k int, eps float64) (*Push, error) {
	s, err := newShipper(k, eps)
	if err != nil {
		return nil, err
	}
	return &Push{shipper: *s}, nil
}

// Feed records an arrival and re-ships the site's summaries if its local
// count grew by a (1+ε/2) factor.
func (t *Push) Feed(site int, x uint64) {
	s := t.observe(site, x)
	if float64(s.nj) >= (1+t.eps/2)*float64(s.cachedN) {
		t.ship(site, "summary")
	}
}

// ---------------------------------------------------------------------------
// Poll (coordinator-initiated)
// ---------------------------------------------------------------------------

// Poll tracks the global count with cheap counter messages and polls every
// site for fresh summaries whenever the count grows by a (1+ε/2) factor:
// O(k/ε²·log n) words total.
type Poll struct {
	shipper
	reported []int64 // per-site count last reported via the cheap counter
	cheapEst int64
	lastPoll int64
}

// NewPoll returns the coordinator-initiated polling baseline.
func NewPoll(k int, eps float64) (*Poll, error) {
	s, err := newShipper(k, eps)
	if err != nil {
		return nil, err
	}
	return &Poll{shipper: *s, reported: make([]int64, k)}, nil
}

// Feed records an arrival; sites keep the coordinator's count estimate
// fresh, and the coordinator polls on (1+ε/2)-factor growth.
func (t *Poll) Feed(site int, x uint64) {
	s := t.observe(site, x)
	// Cheap distributed counting at ε/8.
	if float64(s.nj) >= (1+t.eps/8)*float64(t.reported[site]) {
		delta := s.nj - t.reported[site]
		t.reported[site] = s.nj
		t.cheapEst += delta
		t.meter.Up(site, "count", 1)
	}
	if float64(t.cheapEst) >= (1+t.eps/2)*float64(t.lastPoll) {
		t.lastPoll = t.cheapEst
		for j := range t.sites {
			t.meter.Down(j, "poll", 1)
			t.ship(j, "summary")
		}
	}
}
