package baseline

import (
	"testing"

	"disttrack/internal/oracle"
	"disttrack/internal/stream"
)

// checkHH asserts the ε-approximate heavy-hitter contract.
func checkHH(t *testing.T, name string, got []uint64, o *oracle.Oracle, phi, eps float64, step int) {
	t.Helper()
	reported := map[uint64]bool{}
	for _, x := range got {
		reported[x] = true
		if float64(o.Count(x)) < (phi-eps)*float64(o.Len()) {
			t.Fatalf("%s step %d: false positive %d (freq %d of %d)",
				name, step, x, o.Count(x), o.Len())
		}
	}
	for _, x := range o.HeavyHitters(phi) {
		if !reported[x] {
			t.Fatalf("%s step %d: missed heavy hitter %d (freq %d of %d)",
				name, step, x, o.Count(x), o.Len())
		}
	}
}

func TestNaiveIsExact(t *testing.T) {
	tr := NewNaive(4)
	o := oracle.New()
	g := stream.Zipf(1000, 20000, 1.3, 1)
	for i := 0; ; i++ {
		x, ok := g.Next()
		if !ok {
			break
		}
		tr.Feed(i%4, x)
		o.Add(x)
	}
	hh := tr.HeavyHitters(0.05)
	want := o.HeavyHitters(0.05)
	if len(hh) != len(want) {
		t.Fatalf("naive HH %v != exact %v", hh, want)
	}
	for i := range hh {
		if hh[i] != want[i] {
			t.Fatalf("naive HH %v != exact %v", hh, want)
		}
	}
	if q, w := tr.Quantile(0.5), o.Quantile(0.5); q != w {
		t.Fatalf("naive median %d != exact %d", q, w)
	}
	// Cost is exactly n messages of 1 word.
	if c := tr.Meter().Total(); c.Msgs != 20000 || c.Words != 20000 {
		t.Fatalf("naive cost %+v, want exactly n", c)
	}
}

func runBaselineHH(t *testing.T, name string, tr Tracker, phi, eps float64) {
	t.Helper()
	o := oracle.New()
	g := stream.Zipf(5000, 40000, 1.4, 7)
	for i := 0; ; i++ {
		x, ok := g.Next()
		if !ok {
			break
		}
		tr.Feed(i%8, x)
		o.Add(x)
		if i%199 == 0 && i > 100 {
			checkHH(t, name, tr.HeavyHitters(phi), o, phi, eps, i)
		}
	}
	checkHH(t, name, tr.HeavyHitters(phi), o, phi, eps, -1)
}

func TestPushHeavyHitterContract(t *testing.T) {
	tr, err := NewPush(8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	runBaselineHH(t, "push", tr, 0.1, 0.05)
}

func TestPollHeavyHitterContract(t *testing.T) {
	tr, err := NewPoll(8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	runBaselineHH(t, "poll", tr, 0.1, 0.05)
}

func runBaselineQuantile(t *testing.T, name string, tr Tracker, eps float64) {
	t.Helper()
	o := oracle.New()
	g := stream.Perturb(stream.Uniform(1<<30, 40000, 9))
	for i := 0; ; i++ {
		x, ok := g.Next()
		if !ok {
			break
		}
		tr.Feed(i%8, x)
		o.Add(x)
		if i%499 == 0 && i > 500 {
			for _, phi := range []float64{0.1, 0.5, 0.9} {
				v := tr.Quantile(phi)
				if e := o.QuantileRankError(v, phi); e > eps {
					t.Fatalf("%s step %d phi=%g: rank error %.4f > eps", name, i, phi, e)
				}
			}
		}
	}
}

func TestPushQuantileContract(t *testing.T) {
	tr, _ := NewPush(8, 0.05)
	runBaselineQuantile(t, "push", tr, 0.05)
}

func TestPollQuantileContract(t *testing.T) {
	tr, _ := NewPoll(8, 0.05)
	runBaselineQuantile(t, "poll", tr, 0.05)
}

func TestPushCostQuadraticInEps(t *testing.T) {
	// Halving eps should roughly quadruple words (1/ε sketch size × 1/ε
	// shipping frequency) — the Θ(1/ε) gap to Theorem 2.1 the paper closes.
	run := func(eps float64) int64 {
		tr, _ := NewPush(4, eps)
		g := stream.Zipf(100000, 1<<17, 1.3, 11)
		for i := 0; ; i++ {
			x, ok := g.Next()
			if !ok {
				break
			}
			tr.Feed(i%4, x)
		}
		return tr.Meter().Total().Words
	}
	w1 := run(0.08)
	w2 := run(0.04)
	r := float64(w2) / float64(w1)
	if r < 2.5 || r > 6.5 {
		t.Fatalf("halving eps: words %d → %d (ratio %.2f), want ~4x", w1, w2, r)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewPush(0, 0.1); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := NewPoll(2, 0); err == nil {
		t.Fatal("eps=0 should error")
	}
	tr, _ := NewPush(2, 0.1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad site should panic")
			}
		}()
		tr.Feed(7, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile before shipment should panic")
			}
		}()
		NewNaive(2).Quantile(0.5)
	}()
}

func TestPollCheapCounterKeepsPollsLogarithmic(t *testing.T) {
	tr, _ := NewPoll(4, 0.1)
	g := stream.Uniform(1000, 1<<16, 13)
	for i := 0; ; i++ {
		x, ok := g.Next()
		if !ok {
			break
		}
		tr.Feed(i%4, x)
	}
	polls := tr.Meter().Kind("poll").Msgs / 4
	// log_{1.05}(2^16) ≈ 230.
	if polls < 20 || polls > 600 {
		t.Fatalf("polls=%d, want Θ(log n / ε)≈230", polls)
	}
}
