package stream

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	evs := Events(Zipf(1000, 5000, 1.3, 1), RandomAssign(8, 2))
	var buf bytes.Buffer
	if err := WriteEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("got %d events, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i] != evs[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], evs[i])
		}
	}
}

func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("got %d events", len(back))
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(bytes.NewReader([]byte("garbage bytes here...."))); err == nil {
		t.Fatal("garbage should not decode")
	}
	// Truncated body.
	evs := Events(Sequential(100), RoundRobin(4))
	var buf bytes.Buffer
	if err := WriteEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEvents(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); err == nil {
		t.Fatal("truncated trace should not decode")
	}
}

func TestTraceRejectsNegativeSite(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvents(&buf, []Event{{Site: -1, Item: 3}}); err == nil {
		t.Fatal("negative site should be rejected")
	}
}

func TestReplayEvents(t *testing.T) {
	evs := Events(Zipf(500, 2000, 1.5, 3), WeightedAssign([]float64{1, 3}, 4))
	gen, assign := ReplayEvents(evs)
	for i := 0; ; i++ {
		x, ok := gen.Next()
		if !ok {
			if i != len(evs) {
				t.Fatalf("replay ended at %d of %d", i, len(evs))
			}
			break
		}
		if x != evs[i].Item {
			t.Fatalf("replay item %d: %d != %d", i, x, evs[i].Item)
		}
		if got := assign.Site(i, x); got != evs[i].Site {
			t.Fatalf("replay site %d: %d != %d", i, got, evs[i].Site)
		}
	}
	// Out-of-range assigner queries are clamped to site 0, not a panic.
	if assign.Site(len(evs)+5, 0) != 0 {
		t.Fatal("out-of-range replay site should be 0")
	}
}
