package stream

import (
	"testing"
	"testing/quick"
)

func drain(g Generator) []Item {
	var out []Item
	for {
		x, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, x)
	}
}

func TestFromSlice(t *testing.T) {
	in := []Item{3, 1, 4, 1, 5}
	got := drain(FromSlice(in))
	if len(got) != len(in) {
		t.Fatalf("got %v", got)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("got %v want %v", got, in)
		}
	}
	// Exhausted generator stays exhausted.
	g := FromSlice(in)
	drain(g)
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted generator returned ok")
	}
}

func TestUniformBoundsAndCount(t *testing.T) {
	got := drain(Uniform(100, 5000, 42))
	if len(got) != 5000 {
		t.Fatalf("len=%d want 5000", len(got))
	}
	for _, x := range got {
		if x >= 100 {
			t.Fatalf("item %d outside universe", x)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := drain(Uniform(1000, 200, 7))
	b := drain(Uniform(1000, 200, 7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := drain(Uniform(1000, 200, 8))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestZipfSkew(t *testing.T) {
	got := drain(Zipf(1000, 20000, 1.5, 11))
	counts := map[Item]int{}
	for _, x := range got {
		if x >= 1000 {
			t.Fatalf("item %d outside universe", x)
		}
		counts[x]++
	}
	// Item 0 should dominate: strictly more frequent than item 10.
	if counts[0] <= counts[10] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
	if counts[0] < len(got)/20 {
		t.Fatalf("zipf head too light: %d of %d", counts[0], len(got))
	}
}

func TestSequential(t *testing.T) {
	got := drain(Sequential(5))
	for i, x := range got {
		if x != uint64(i) {
			t.Fatalf("got %v", got)
		}
	}
}

func TestHotSet(t *testing.T) {
	got := drain(HotSet(10000, 20000, 4, 0.8, 3))
	hot := 0
	for _, x := range got {
		if x < 4 {
			hot++
		} else if x < 4 || x >= 10000 {
			t.Fatalf("item %d outside ranges", x)
		}
	}
	frac := float64(hot) / float64(len(got))
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction %.3f, want ~0.8", frac)
	}
}

func TestConcat(t *testing.T) {
	g := Concat(FromSlice([]Item{1, 2}), FromSlice(nil), FromSlice([]Item{3}))
	got := drain(g)
	want := []Item{1, 2, 3}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestPerturbDistinctAndRecoverable(t *testing.T) {
	base := []Item{7, 7, 7, 2, 7, 2}
	got := drain(Perturb(FromSlice(base)))
	seen := map[Item]bool{}
	for i, key := range got {
		if seen[key] {
			t.Fatalf("duplicate perturbed key %d", key)
		}
		seen[key] = true
		if Unperturb(key) != base[i] {
			t.Fatalf("Unperturb(%d)=%d want %d", key, Unperturb(key), base[i])
		}
	}
	// Order among same-value keys follows arrival order.
	if !(got[0] < got[1] && got[1] < got[2] && got[2] < got[4]) {
		t.Fatalf("perturbed keys for equal values not increasing: %v", got)
	}
}

func TestPerturbPreservesValueOrder(t *testing.T) {
	f := func(a, b uint32) bool {
		// Any key of value a compares below any key of value b iff a < b
		// (for a != b).
		ka := PerturbValue(Item(a)) | 12345
		kb := PerturbValue(Item(b))
		if a < b {
			return ka < kb
		}
		if a > b {
			return ka > kb
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobin(t *testing.T) {
	a := RoundRobin(3)
	for i := 0; i < 9; i++ {
		if got := a.Site(i, 0); got != i%3 {
			t.Fatalf("Site(%d)=%d", i, got)
		}
	}
}

func TestRandomAssignRange(t *testing.T) {
	a := RandomAssign(5, 1)
	counts := make([]int, 5)
	for i := 0; i < 5000; i++ {
		s := a.Site(i, 0)
		if s < 0 || s >= 5 {
			t.Fatalf("site %d out of range", s)
		}
		counts[s]++
	}
	for j, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("site %d got %d of 5000, far from uniform", j, c)
		}
	}
}

func TestWeightedAssign(t *testing.T) {
	a := WeightedAssign([]float64{3, 1}, 2)
	counts := make([]int, 2)
	for i := 0; i < 8000; i++ {
		counts[a.Site(i, 0)]++
	}
	frac := float64(counts[0]) / 8000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("weighted fraction %.3f, want ~0.75", frac)
	}
}

func TestWeightedAssignPanics(t *testing.T) {
	for _, w := range [][]float64{{-1, 2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedAssign(%v) should panic", w)
				}
			}()
			WeightedAssign(w, 1)
		}()
	}
}

func TestSingleSite(t *testing.T) {
	a := SingleSite(2)
	for i := 0; i < 5; i++ {
		if a.Site(i, uint64(i)) != 2 {
			t.Fatal("SingleSite must always return its site")
		}
	}
}

func TestByHashStable(t *testing.T) {
	a := ByHash(7)
	for x := Item(0); x < 100; x++ {
		s1 := a.Site(0, x)
		s2 := a.Site(99, x)
		if s1 != s2 {
			t.Fatalf("ByHash not stable for item %d", x)
		}
		if s1 < 0 || s1 >= 7 {
			t.Fatalf("site %d out of range", s1)
		}
	}
}

func TestEvents(t *testing.T) {
	evs := Events(FromSlice([]Item{10, 20, 30}), RoundRobin(2))
	if len(evs) != 3 {
		t.Fatalf("len=%d", len(evs))
	}
	if evs[0] != (Event{0, 10}) || evs[1] != (Event{1, 20}) || evs[2] != (Event{0, 30}) {
		t.Fatalf("events %v", evs)
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Uniform(0, 5, 1) },
		func() { Zipf(10, 5, 1.0, 1) },
		func() { HotSet(10, 5, 20, 0.5, 1) },
		func() { HotSet(10, 5, 2, 1.5, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}
