package stream

import (
	"math"
	"math/rand"
)

// Additional value distributions for realistic workloads: latency-like
// (log-normal, exponential) and reading-like (normal) value streams, plus a
// drifting mixture for continuous-tracking stress.

// Normal returns n values distributed N(mean, stddev²), clamped at zero and
// quantized to integers.
func Normal(mean, stddev float64, n int64, seed int64) Generator {
	if stddev < 0 || n < 0 {
		panic("stream: Normal requires stddev >= 0 and n >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	return &funcGen{n: n, f: func() Item {
		v := mean + stddev*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return uint64(v)
	}}
}

// Exponential returns n values distributed Exp(1/mean), quantized to
// integers — a light-tailed latency model.
func Exponential(mean float64, n int64, seed int64) Generator {
	if mean <= 0 || n < 0 {
		panic("stream: Exponential requires mean > 0 and n >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	return &funcGen{n: n, f: func() Item {
		return uint64(rng.ExpFloat64() * mean)
	}}
}

// LogNormal returns n values with ln X ~ N(mu, sigma²) — the classic
// heavy-tailed latency model.
func LogNormal(mu, sigma float64, n int64, seed int64) Generator {
	if sigma < 0 || n < 0 {
		panic("stream: LogNormal requires sigma >= 0 and n >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	return &funcGen{n: n, f: func() Item {
		return uint64(math.Exp(mu + sigma*rng.NormFloat64()))
	}}
}

// Drift returns n values from a normal distribution whose mean moves
// linearly from startMean to endMean over the stream — continuous
// distribution change, the hardest regime for "at all times" guarantees.
func Drift(startMean, endMean, stddev float64, n int64, seed int64) Generator {
	if n < 0 || stddev < 0 {
		panic("stream: Drift requires stddev >= 0 and n >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	i := int64(0)
	return &funcGen{n: n, f: func() Item {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		i++
		mean := startMean + (endMean-startMean)*frac
		v := mean + stddev*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return uint64(v)
	}}
}
