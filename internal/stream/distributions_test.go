package stream

import (
	"math"
	"sort"
	"testing"
)

func stats(xs []Item) (mean, stddev float64) {
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := float64(x) - mean
		stddev += d * d
	}
	return mean, math.Sqrt(stddev / float64(len(xs)))
}

func TestNormalMoments(t *testing.T) {
	xs := drain(Normal(1000, 50, 20000, 1))
	mean, sd := stats(xs)
	if math.Abs(mean-1000) > 5 {
		t.Fatalf("mean %.1f want ~1000", mean)
	}
	if math.Abs(sd-50) > 5 {
		t.Fatalf("stddev %.1f want ~50", sd)
	}
}

func TestNormalClampsAtZero(t *testing.T) {
	for _, x := range drain(Normal(1, 100, 5000, 2)) {
		if x > 1<<32 {
			t.Fatalf("negative value wrapped to %d", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	xs := drain(Exponential(500, 30000, 3))
	mean, _ := stats(xs)
	if math.Abs(mean-500) > 25 {
		t.Fatalf("mean %.1f want ~500", mean)
	}
}

func TestLogNormalHeavyTail(t *testing.T) {
	xs := drain(LogNormal(7, 1, 30000, 4))
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	median := float64(xs[len(xs)/2])
	p99 := float64(xs[len(xs)*99/100])
	// ln-median = mu → median ≈ e^7 ≈ 1096; p99 ≈ e^(7+2.33) ≈ 11, 000+.
	if median < 800 || median > 1400 {
		t.Fatalf("median %.0f want ~1096", median)
	}
	if p99 < 5*median {
		t.Fatalf("p99 %.0f not heavy-tailed vs median %.0f", p99, median)
	}
}

func TestDriftMovesMean(t *testing.T) {
	xs := drain(Drift(100, 10100, 10, 20000, 5))
	early, _ := stats(xs[:2000])
	late, _ := stats(xs[len(xs)-2000:])
	if early > 1500 {
		t.Fatalf("early mean %.0f want ~start", early)
	}
	if late < 8500 {
		t.Fatalf("late mean %.0f want ~end", late)
	}
}

func TestDistributionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"normal":      func() { Normal(1, -1, 5, 1) },
		"exponential": func() { Exponential(0, 5, 1) },
		"lognormal":   func() { LogNormal(0, -1, 5, 1) },
		"drift":       func() { Drift(0, 1, -1, 5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}
