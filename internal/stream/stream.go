// Package stream provides the workloads of the distributed streaming model:
// finite item generators over a universe U = {0, ..., u-1}, policies for
// assigning each arrival to one of k sites, and the "symbolic perturbation"
// the paper invokes to make items distinct for the quantile protocols.
//
// Every randomized component takes an explicit seed, so all workloads are
// reproducible; the experiment harness and the tests rely on this.
package stream

import (
	"fmt"
	"math/rand"
)

// Item is a stream element drawn from the universe.
type Item = uint64

// Generator produces a finite stream of items.
type Generator interface {
	// Next returns the next item; ok is false when the stream is exhausted.
	Next() (item Item, ok bool)
}

// Assigner decides which of the k sites observes the i-th arrival.
type Assigner interface {
	// Site returns the site index in [0, k) for arrival number i (0-based)
	// of the given item.
	Site(i int, item Item) int
}

// Event is one arrival: an item observed at a site.
type Event struct {
	Site int
	Item Item
}

// Events drains gen through assign and returns the arrival sequence.
func Events(gen Generator, assign Assigner) []Event {
	var evs []Event
	for i := 0; ; i++ {
		x, ok := gen.Next()
		if !ok {
			return evs
		}
		evs = append(evs, Event{Site: assign.Site(i, x), Item: x})
	}
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

// slice is a generator over a fixed sequence.
type slice struct {
	items []Item
	pos   int
}

// FromSlice returns a generator replaying items in order.
func FromSlice(items []Item) Generator { return &slice{items: items} }

func (s *slice) Next() (Item, bool) {
	if s.pos >= len(s.items) {
		return 0, false
	}
	x := s.items[s.pos]
	s.pos++
	return x, true
}

// Uniform returns n items drawn uniformly from [0, u).
func Uniform(u, n int64, seed int64) Generator {
	if u <= 0 || n < 0 {
		panic("stream: Uniform requires u > 0 and n >= 0")
	}
	rng := rand.New(rand.NewSource(seed))
	return &funcGen{n: n, f: func() Item { return uint64(rng.Int63n(u)) }}
}

// Zipf returns n items from [0, u) with Zipfian frequencies of skew s > 1.
// Item 0 is the most frequent.
func Zipf(u, n int64, s float64, seed int64) Generator {
	if u <= 0 || n < 0 {
		panic("stream: Zipf requires u > 0 and n >= 0")
	}
	if s <= 1 {
		panic("stream: Zipf requires skew s > 1")
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(u-1))
	return &funcGen{n: n, f: z.Uint64}
}

// Sequential returns the items 0, 1, 2, ..., n-1 in order (all distinct).
func Sequential(n int64) Generator {
	i := int64(0)
	return &funcGen{n: n, f: func() Item {
		x := uint64(i)
		i++
		return x
	}}
}

// HotSet returns n items where each arrival is one of the h "hot" items
// (0..h-1, chosen uniformly) with probability p, and otherwise uniform over
// the cold range [h, u).
func HotSet(u, n int64, h int, p float64, seed int64) Generator {
	if int64(h) >= u || h <= 0 || p < 0 || p > 1 {
		panic("stream: invalid HotSet parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	return &funcGen{n: n, f: func() Item {
		if rng.Float64() < p {
			return uint64(rng.Intn(h))
		}
		return uint64(int64(h) + rng.Int63n(u-int64(h)))
	}}
}

type funcGen struct {
	n    int64
	done int64
	f    func() Item
}

func (g *funcGen) Next() (Item, bool) {
	if g.done >= g.n {
		return 0, false
	}
	g.done++
	return g.f(), true
}

// Concat chains generators one after another.
func Concat(gens ...Generator) Generator { return &concat{gens: gens} }

type concat struct {
	gens []Generator
	pos  int
}

func (c *concat) Next() (Item, bool) {
	for c.pos < len(c.gens) {
		if x, ok := c.gens[c.pos].Next(); ok {
			return x, true
		}
		c.pos++
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Symbolic perturbation (distinctness for the quantile protocols)
// ---------------------------------------------------------------------------

// PerturbBits is the number of low-order bits Perturb appends to each item
// to break ties, giving 2^24 distinct keys per original value.
const PerturbBits = 24

// Perturb wraps gen so every emitted key is distinct: the original value is
// shifted left by PerturbBits and a per-value sequence number occupies the
// low bits. This is the paper's "symbolic perturbation": quantile ranks over
// perturbed keys equal item-level ranks with ties broken by arrival order.
// Unperturb recovers the original value.
func Perturb(gen Generator) Generator {
	return &perturber{gen: gen, seq: make(map[Item]uint32)}
}

type perturber struct {
	gen Generator
	seq map[Item]uint32
}

func (p *perturber) Next() (Item, bool) {
	x, ok := p.gen.Next()
	if !ok {
		return 0, false
	}
	s := p.seq[x]
	p.seq[x] = s + 1
	if s >= 1<<PerturbBits {
		panic(fmt.Sprintf("stream: more than 2^%d occurrences of item %d", PerturbBits, x))
	}
	return x<<PerturbBits | uint64(s), true
}

// Unperturb recovers the original value from a perturbed key.
func Unperturb(key Item) Item { return key >> PerturbBits }

// PerturbValue maps an original value to the smallest perturbed key carrying
// it; [PerturbValue(v), PerturbValue(v+1)) is the key range of value v.
func PerturbValue(v Item) Item { return v << PerturbBits }

// ---------------------------------------------------------------------------
// Assigners
// ---------------------------------------------------------------------------

// RoundRobin assigns arrival i to site i mod k.
func RoundRobin(k int) Assigner { return roundRobin(k) }

type roundRobin int

func (k roundRobin) Site(i int, _ Item) int { return i % int(k) }

// RandomAssign assigns each arrival to a site uniformly at random.
func RandomAssign(k int, seed int64) Assigner {
	return &randAssign{k: k, rng: rand.New(rand.NewSource(seed))}
}

type randAssign struct {
	k   int
	rng *rand.Rand
}

func (a *randAssign) Site(int, Item) int { return a.rng.Intn(a.k) }

// WeightedAssign assigns arrivals to sites with the given probability
// weights (not necessarily normalized), modelling skewed observation rates.
func WeightedAssign(weights []float64, seed int64) Assigner {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stream: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stream: weights sum to zero")
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	return &weighted{cum: cum, rng: rand.New(rand.NewSource(seed))}
}

type weighted struct {
	cum []float64
	rng *rand.Rand
}

func (a *weighted) Site(int, Item) int {
	r := a.rng.Float64()
	for i, c := range a.cum {
		if r < c {
			return i
		}
	}
	return len(a.cum) - 1
}

// SingleSite sends every arrival to one site — the degenerate (and
// adversarially easy-to-get-wrong) placement.
func SingleSite(site int) Assigner { return singleSite(site) }

type singleSite int

func (s singleSite) Site(int, Item) int { return int(s) }

// ByHash assigns by a fixed hash of the item value, so all occurrences of a
// value land on the same site (the sharded-ingest pattern).
func ByHash(k int) Assigner { return byHash(k) }

type byHash int

func (k byHash) Site(_ int, x Item) int {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return int(x % uint64(k))
}
