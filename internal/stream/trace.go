package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Trace record/replay: experiments can persist the exact arrival sequence
// (site, item) and re-run any tracker over it byte-identically — useful for
// regression traces, cross-implementation comparisons, and replaying
// production captures through the simulator.

const traceMagicValue = uint32(0x7E57_ACE5)

// WriteEvents persists an arrival sequence in a stable little-endian binary
// format: a 12-byte header followed by (site uint32, item uint64) records.
func WriteEvents(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagicValue)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(evs)))
	if _, err := bw.Write(hdr); err != nil {
		return fmt.Errorf("stream: write trace: %w", err)
	}
	rec := make([]byte, 12)
	for _, ev := range evs {
		if ev.Site < 0 {
			return fmt.Errorf("stream: write trace: negative site %d", ev.Site)
		}
		binary.LittleEndian.PutUint32(rec[0:4], uint32(ev.Site))
		binary.LittleEndian.PutUint64(rec[4:12], ev.Item)
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("stream: write trace: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEvents loads an arrival sequence written by WriteEvents.
func ReadEvents(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("stream: read trace: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagicValue {
		return nil, fmt.Errorf("stream: read trace: bad magic")
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	if n > 1<<40 {
		return nil, fmt.Errorf("stream: read trace: implausible length %d", n)
	}
	evs := make([]Event, 0, n)
	rec := make([]byte, 12)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("stream: read trace: record %d: %w", i, err)
		}
		evs = append(evs, Event{
			Site: int(binary.LittleEndian.Uint32(rec[0:4])),
			Item: binary.LittleEndian.Uint64(rec[4:12]),
		})
	}
	return evs, nil
}

// ReplayEvents returns a generator/assigner pair that replays the recorded
// sequence exactly: the generator yields the items in order and the
// assigner returns each arrival's recorded site.
func ReplayEvents(evs []Event) (Generator, Assigner) {
	items := make([]Item, len(evs))
	for i, ev := range evs {
		items[i] = ev.Item
	}
	return FromSlice(items), replayAssign(evs)
}

type replayAssign []Event

func (r replayAssign) Site(i int, _ Item) int {
	if i < 0 || i >= len(r) {
		return 0
	}
	return r[i].Site
}
